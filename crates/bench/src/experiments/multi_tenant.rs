//! Multi-tenant checkpoint service: aggregate throughput and stall
//! tails when N jobs share one striped durable array.
//!
//! The paper sizes the durable tier for a single job that owns the
//! storage stack; a shared checkpoint service must also hold each
//! job's stall tail down when neighbours contend. This experiment
//! runs mixed fleets (all nine calibrated workloads, cycled, with
//! deterministic QoS weights) through `ickpt-svc`'s closed-loop
//! service simulation and reports:
//!
//! 1. aggregate drained throughput and stall percentiles vs tenant
//!    count (default 1/4/16/64), and
//! 2. a policy ablation at the largest contended fleet: deficit-
//!    round-robin fair-share vs FIFO vs strict-priority, where
//!    fair-share must beat FIFO's p99 stall (head-of-line blocking by
//!    multi-chunk heavy requests is exactly what DRR removes).
//!
//! ## Knobs
//!
//! * `ICKPT_BENCH_TENANTS` — comma-separated fleet sizes
//!   (default `1,4,16,64`).
//! * `ICKPT_BENCH_SVC_DEVICES` — striped array width (default 4).
//! * `ICKPT_BENCH_SVC_SECONDS` — virtual seconds of arrivals
//!   (default 300).
//! * `ICKPT_BENCH_SVC_SCALE` — memory scale factor (default `0.1`).
//! * `ICKPT_BENCH_THREADS` — host threads for the sweep cells; stdout
//!   is byte-identical at any value.

use std::fmt::Write as _;
use std::time::Instant;

use ickpt::cluster::tenant::{fleet_profiles, mixed_fleet, TenantStallAccount};
use ickpt::sim::SimDuration;
use ickpt::svc::{run_service, SchedPolicy, ServiceConfig, ServiceReport};
use ickpt_analysis::table::fnum;
use ickpt_analysis::{Comparison, ExperimentReport, TextTable};
use ickpt_obs::Recorder;

use crate::engine::parallel_map;
use crate::obs_glue::TraceBuilder;
use crate::{knob, BENCH_SEED};

/// The default fleet-size sweep.
pub const DEFAULT_TENANTS: [usize; 4] = [1, 4, 16, 64];

/// Fleet sizes for the sweep (`ICKPT_BENCH_TENANTS`).
// Mirrors `knob`: aborting with a message is the sanctioned use of
// stderr in this library.
#[allow(clippy::disallowed_macros)]
pub fn svc_tenants() -> Vec<usize> {
    let Ok(raw) = std::env::var("ICKPT_BENCH_TENANTS") else {
        return DEFAULT_TENANTS.to_vec();
    };
    let parsed: Result<Vec<usize>, _> = raw.split(',').map(|s| s.trim().parse()).collect();
    match parsed {
        Ok(v) if !v.is_empty() && v.iter().all(|&n| n >= 1) => v,
        _ => {
            eprintln!(
                "error: ICKPT_BENCH_TENANTS={raw:?} is invalid: expected a comma-separated \
                 list of fleet sizes >= 1"
            );
            std::process::exit(2);
        }
    }
}

/// Striped array width (`ICKPT_BENCH_SVC_DEVICES`).
pub fn svc_devices() -> usize {
    knob("ICKPT_BENCH_SVC_DEVICES", 4, "a whole number of devices >= 1", |&d: &usize| d >= 1)
}

/// Virtual seconds of arrivals (`ICKPT_BENCH_SVC_SECONDS`).
pub fn svc_seconds() -> u64 {
    knob("ICKPT_BENCH_SVC_SECONDS", 300, "a whole number of seconds >= 10", |&s: &u64| s >= 10)
}

/// Memory scale of the tenant fleets (`ICKPT_BENCH_SVC_SCALE`).
pub fn svc_scale() -> f64 {
    knob("ICKPT_BENCH_SVC_SCALE", 0.1, "a finite scale factor > 0", |&s: &f64| {
        s > 0.0 && s.is_finite()
    })
}

/// Build the service config for a fleet of `n` under `policy`.
pub fn svc_config(n: usize, policy: SchedPolicy) -> ServiceConfig {
    let fleet = mixed_fleet(n, svc_scale(), BENCH_SEED);
    let mut cfg = ServiceConfig::new(fleet_profiles(&fleet), SimDuration::from_secs(svc_seconds()));
    cfg.devices = svc_devices();
    cfg.policy = policy;
    cfg.seed = BENCH_SEED;
    cfg.with_fair_admission(10)
}

fn ms(d: ickpt::sim::SimDuration) -> String {
    fnum(d.0 as f64 / 1e6, 1)
}

fn throughput_row(n: usize, r: &ServiceReport) -> Vec<String> {
    let account = TenantStallAccount::from_report(r);
    vec![
        n.to_string(),
        fnum(r.aggregate_throughput_mbps(), 1),
        r.aggregate.checkpoints.to_string(),
        r.aggregate.rejections.to_string(),
        ms(r.stall_percentile_all(50)),
        ms(r.stall_percentile_all(99)),
        ms(account.worst_p99()),
        fnum(account.worst_efficiency_bp() as f64 / 100.0, 1),
    ]
}

/// Regenerate the multi-tenant service tables.
pub fn report() -> ExperimentReport {
    let counts = svc_tenants();
    let devices = svc_devices();
    let mut body = format!(
        "\n=== Multi-tenant service: {} tenants on a {}-device striped array ===\n    \
         config: scale {}, {} virtual s, {} x 320 MB/s devices, 4 MB stripe chunks, \
         seed {:#x}\n\n",
        counts.iter().map(|n| n.to_string()).collect::<Vec<_>>().join("/"),
        devices,
        svc_scale(),
        svc_seconds(),
        devices,
        BENCH_SEED,
    );

    // Throughput sweep: cells are independent service runs, fanned out
    // on host threads; each run is serial inside (one event wheel), so
    // assembly order — not scheduling — fixes the table.
    let host_t0 = Instant::now();
    let sweep: Vec<ServiceReport> = parallel_map(&counts, |&n| {
        run_service(&svc_config(n, SchedPolicy::FairShare), &Recorder::disabled())
    });
    host_timing("sweep", host_t0.elapsed().as_secs_f64());

    let mut t = TextTable::new("").header(&[
        "tenants",
        "agg MB/s",
        "ckpts",
        "rejects",
        "p50 stall (ms)",
        "p99 stall (ms)",
        "worst tenant p99 (ms)",
        "worst eff (%)",
    ]);
    for (&n, r) in counts.iter().zip(&sweep) {
        t.row(throughput_row(n, r));
    }
    writeln!(body, "{}", t.render()).unwrap();

    let first = &sweep[0];
    let last = sweep.last().unwrap();
    let n_first = counts[0];
    let n_last = *counts.last().unwrap();
    writeln!(
        body,
        "aggregate throughput {n_first} -> {n_last} tenants: {} -> {} MB/s ({:.1}x) under \
         fair-share admission\n",
        fnum(first.aggregate_throughput_mbps(), 1),
        fnum(last.aggregate_throughput_mbps(), 1),
        last.aggregate_throughput_mbps() / first.aggregate_throughput_mbps().max(1e-9),
    )
    .unwrap();

    // Policy ablation at the largest fleet (run serially — each run
    // records live tenant/device lanes into its own trace group).
    let n_ablate = n_last.max(16);
    let policies = [SchedPolicy::FairShare, SchedPolicy::Fifo, SchedPolicy::StrictPriority];
    let mut tb = TraceBuilder::begin();
    let recorders: Vec<Recorder> =
        policies.iter().map(|p| tb.recorder(&format!("{}-{n_ablate}t", p.token()))).collect();
    let host_t0 = Instant::now();
    let ablation: Vec<ServiceReport> = policies
        .iter()
        .zip(&recorders)
        .map(|(&p, rec)| run_service(&svc_config(n_ablate, p), rec))
        .collect();
    host_timing("ablation", host_t0.elapsed().as_secs_f64());

    let mut t = TextTable::new(format!("interference ablation @ {n_ablate} tenants")).header(&[
        "policy",
        "agg MB/s",
        "ckpts",
        "rejects",
        "p99 stall (ms)",
        "worst tenant p99 (ms)",
        "max stall (ms)",
    ]);
    for (p, r) in policies.iter().zip(&ablation) {
        let account = TenantStallAccount::from_report(r);
        t.row(vec![
            p.token().to_string(),
            fnum(r.aggregate_throughput_mbps(), 1),
            r.aggregate.checkpoints.to_string(),
            r.aggregate.rejections.to_string(),
            ms(r.stall_percentile_all(99)),
            ms(account.worst_p99()),
            ms(SimDuration(r.aggregate.stall_ns_max)),
        ]);
    }
    writeln!(body, "{}", t.render()).unwrap();

    let fair_p99 = ablation[0].stall_percentile_all(99).0;
    let fifo_p99 = ablation[1].stall_percentile_all(99).0;
    writeln!(
        body,
        "fair-share vs FIFO p99 stall @ {n_ablate} tenants: {} vs {} ms — DRR removes \
         head-of-line blocking: {}",
        fnum(fair_p99 as f64 / 1e6, 1),
        fnum(fifo_p99 as f64 / 1e6, 1),
        if fair_p99 < fifo_p99 { "CONFIRMED" } else { "VIOLATED" }
    )
    .unwrap();

    let comparisons = vec![
        Comparison::new(
            format!("multi-tenant / fair-share beats FIFO p99 @ {n_ablate}t"),
            100.0,
            if fair_p99 < fifo_p99 { 100.0 } else { 0.0 },
            "%",
        ),
        Comparison::new(
            format!("multi-tenant / drained-byte conservation @ {n_last}t"),
            1.0,
            last.aggregate.drained_bytes as f64
                / (last.device_bytes.iter().sum::<u64>() as f64).max(1.0),
            "x",
        ),
    ];
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Host wall-clock per stage — stderr only, so stdout stays
/// byte-identical across `ICKPT_BENCH_THREADS` values.
// Sanctioned stderr write: timing is host-dependent by nature and must
// never reach the deterministic report body.
#[allow(clippy::disallowed_macros)]
fn host_timing(stage: &str, elapsed_s: f64) {
    eprintln!("multi_tenant: {stage} in {elapsed_s:.1}s host time");
}

/// Print the regenerated tables and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_reaches_contention() {
        assert_eq!(DEFAULT_TENANTS[0], 1);
        assert!(*DEFAULT_TENANTS.last().unwrap() >= 16, "ablation needs a contended fleet");
        assert!(DEFAULT_TENANTS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn configs_are_deterministic() {
        let a = svc_config(16, SchedPolicy::FairShare);
        let b = svc_config(16, SchedPolicy::FairShare);
        assert_eq!(a.tenants, b.tenants);
        assert_eq!(a.seed, b.seed);
        // Weights cover more than one QoS class so the ablation is not
        // degenerate.
        let distinct: std::collections::BTreeSet<u32> =
            a.tenants.iter().map(|t| t.weight).collect();
        assert!(distinct.len() > 1);
    }
}
