//! Figure 5: average per-process IB vs timeslice for 8, 16, 32 and 64
//! processors, Sage-1000MB under weak scaling.
//!
//! Paper shape: "the number of processors doesn't have a significant
//! influence on the IB. Actually, when we increase the number of
//! processors, the per-processor IB is slightly lower" (§6.4.2) — the
//! key generalization-to-larger-machines claim.

use std::fmt::Write as _;

use ickpt::apps::Workload;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{ascii_multi_plot, Comparison, ExperimentReport, TextTable};

use crate::engine::{parallel_map, run_cached_at, PAPER_TIMESLICES as TIMESLICES};
use crate::obs_glue::TraceBuilder;
use crate::{banner_string, ib_stats};

/// The processor counts of the paper's scaling study.
pub const RANK_COUNTS: [usize; 4] = [8, 16, 32, 64];

fn run_at(nranks: usize, ts: u64) -> f64 {
    let w = Workload::Sage1000;
    let report = run_cached_at(nranks, w, ts);
    ib_stats(w, &report, ts).avg_mbps
}

/// Regenerate Figure 5.
pub fn report() -> ExperimentReport {
    let mut body = banner_string(
        "Figure 5: avg per-process IB for 8/16/32/64 processors (Sage-1000MB, weak scaling)",
    );
    let per_p: Vec<(usize, Vec<(u64, f64)>)> =
        parallel_map(&RANK_COUNTS, |&p| (p, parallel_map(&TIMESLICES, |&ts| (ts, run_at(p, ts)))));
    let mut tb = TraceBuilder::begin();
    if tb.enabled() {
        for &p in &RANK_COUNTS {
            tb.synthesize(&format!("{p}procs/ts=1s"), &run_cached_at(p, Workload::Sage1000, 1));
        }
    }
    let names: Vec<String> = RANK_COUNTS.iter().map(|p| format!("{p} procs")).collect();
    let series: Vec<Vec<(f64, f64)>> = per_p
        .iter()
        .map(|(_, rows)| rows.iter().map(|&(ts, v)| (ts as f64, v)).collect())
        .collect();
    let series_refs: Vec<(&str, &[(f64, f64)])> =
        names.iter().zip(&series).map(|(n, s)| (n.as_str(), s.as_slice())).collect();
    writeln!(body, "{}", ascii_multi_plot("avg IB (MB/s) vs timeslice (s)", &series_refs, 60, 14))
        .unwrap();

    let mut t = TextTable::new("").header(&["timeslice (s)", "8", "16", "32", "64"]);
    for (i, &ts) in TIMESLICES.iter().enumerate() {
        t.row(vec![
            ts.to_string(),
            fnum(per_p[0].1[i].1, 1),
            fnum(per_p[1].1[i].1, 1),
            fnum(per_p[2].1[i].1, 1),
            fnum(per_p[3].1[i].1, 1),
        ]);
    }
    writeln!(body, "{}", t.render()).unwrap();

    let ib8 = per_p[0].1[0].1;
    let ib64 = per_p[3].1[0].1;
    writeln!(
        body,
        "weak scaling (§6.4.2): per-process IB at 64 procs ({:.1}) vs 8 procs ({:.1}): \
         {:+.1}% — slightly lower or flat: {}",
        ib64,
        ib8,
        100.0 * (ib64 - ib8) / ib8,
        if ib64 <= ib8 * 1.01 { "CONFIRMED" } else { "VIOLATED" }
    )
    .unwrap();
    let comparisons = vec![
        Comparison::new("Fig 5 / Sage-1000MB avg IB @1s, 64 procs", 78.8, ib64, "MB/s"),
        Comparison::new("Fig 5 / avg IB ratio 64:8 procs", 0.98, ib64 / ib8, "x"),
    ];
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Print the regenerated figure and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
