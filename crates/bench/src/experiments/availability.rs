//! Availability under failures: the paper's motivating scenario,
//! measured end to end.
//!
//! §1 motivates the work with machines that fail "every few hours" and
//! therefore need checkpoints "every few minutes". This experiment
//! closes that loop on the simulated cluster: run a workload under a
//! deterministic pseudo-Poisson failure process, checkpoint at several
//! intervals, recover on every failure, and measure the achieved
//! **efficiency** (ideal compute time / actual wall time). The
//! measured optimum is compared against Young's analytic interval
//! `sqrt(2·C·M)` from `ickpt_core::interval`.

use std::fmt::Write as _;
use std::sync::Arc;

use ickpt::apps::synthetic::{SyntheticApp, SyntheticConfig};
use ickpt::apps::AppModel;
use ickpt::cluster::{
    run_fault_tolerant, CheckpointMode, FailureSpec, FaultTolerantConfig, RunOutcome, StoragePath,
};
use ickpt::core::coordinator::CheckpointPolicy;
use ickpt::core::interval::IntervalModel;
use ickpt::net::NetConfig;
use ickpt::sim::{DevicePreset, SimDuration, SimTime, SplitMix64};
use ickpt::storage::MemStore;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{Comparison, ExperimentReport, TextTable};

use crate::engine::parallel_map;
use crate::obs_glue::TraceBuilder;
use crate::{banner_string, BENCH_SEED};

const NRANKS: usize = 4;
const ITERATIONS: u64 = 120;
/// Mean time between failures (virtual seconds). Iterations are 1 s,
/// so this is the paper's "failures every few hours" scaled to the
/// synthetic workload's clock.
const MTBF_S: f64 = 60.0;

fn build(rank: usize) -> Box<dyn AppModel> {
    Box::new(SyntheticApp::new(SyntheticConfig {
        footprint_pages: 2048,
        writes_per_iter: 512,
        exchange_bytes: 4096,
        rank,
        nranks: NRANKS,
        ..Default::default()
    }))
}

fn layout() -> ickpt::mem::DataLayout {
    ickpt::mem::LayoutBuilder::new()
        .static_bytes(ickpt::mem::PAGE_SIZE)
        .heap_capacity_bytes(4096 * ickpt::mem::PAGE_SIZE)
        .mmap_capacity_bytes(ickpt::mem::PAGE_SIZE)
        .build()
}

/// Deterministic exponential inter-arrival failure times.
fn failure_schedule(seed: u64, mtbf_s: f64, horizon_s: f64) -> Vec<FailureSpec> {
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0f64;
    let mut out = Vec::new();
    loop {
        // Inverse-CDF exponential draw.
        let u = rng.next_f64().max(1e-12);
        t += -mtbf_s * u.ln();
        if t >= horizon_s {
            return out;
        }
        out.push(FailureSpec::process(
            rng.next_below(NRANKS as u64) as usize,
            SimTime::from_secs_f64(t),
        ));
    }
}

struct Outcome {
    efficiency: f64,
    attempts: u32,
    ckpt_cost_s: f64,
}

fn run_at_interval(
    interval_s: u64,
    failures: Vec<FailureSpec>,
    obs: ickpt::obs::Recorder,
) -> Outcome {
    let cfg = FaultTolerantConfig {
        nranks: NRANKS,
        max_iterations: ITERATIONS,
        timeslice: SimDuration::from_secs(1),
        policy: CheckpointPolicy::incremental(SimDuration::from_secs(interval_s), 4),
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::PerRank,
        failures,
        net: NetConfig::qsnet(),
        max_attempts: 64,
        redundancy: None,
        obs,
        dedup: None,
        write_profile: Default::default(),
    };
    let report = run_fault_tolerant(&cfg, layout(), build).expect("run completes");
    assert_eq!(report.outcome, RunOutcome::Completed);
    let r0 = &report.ranks[0];
    // Ideal: the iterations' own virtual time with no checkpoints and
    // no failures (synthetic iterations are exactly 1 s + init 0.1 s).
    let ideal_s = ITERATIONS as f64 * 1.0 + 0.1;
    // Wall time = the successful attempt's span plus everything the
    // failed attempts burned (rework + restore).
    let actual_s = r0.final_time.as_secs_f64() + report.wasted.as_secs_f64();
    Outcome {
        efficiency: (ideal_s / actual_s).min(1.0),
        attempts: report.attempts,
        ckpt_cost_s: if r0.checkpoints > 0 {
            r0.checkpoint_stall.as_secs_f64() / r0.checkpoints as f64
        } else {
            0.0
        },
    }
}

/// Run the availability study.
pub fn report() -> ExperimentReport {
    let mut body =
        banner_string("Availability: measured efficiency under failures vs Young's model");
    writeln!(
        body,
        "synthetic workload, {NRANKS} ranks, {ITERATIONS} x 1 s iterations, \
         MTBF {MTBF_S} s (pseudo-Poisson, seeded)"
    )
    .unwrap();
    // Failures regenerated per run over a generous horizon; attempt i
    // consumes failures[i], which approximates a failure process over
    // the (recovery-extended) run.
    let horizon = 20.0 * ITERATIONS as f64;
    let mut t = TextTable::new("").header(&[
        "interval (s)",
        "efficiency",
        "predicted",
        "failures",
        "ckpt cost (s)",
    ]);
    let mut best: Option<(u64, f64)> = None;
    let mut ckpt_cost = 0.0f64;
    let mut rows = Vec::new();
    // Recorders pre-allocated in interval order so trace group
    // numbering stays deterministic under the parallel scheduler.
    let mut tb = TraceBuilder::begin();
    let runs: Vec<(u64, ickpt::obs::Recorder)> =
        [2u64, 4, 8, 16, 32].iter().map(|&i| (i, tb.recorder(&format!("interval={i}s")))).collect();
    let outcomes = parallel_map(&runs, |(interval, rec)| {
        let failures = failure_schedule(BENCH_SEED ^ interval, MTBF_S, horizon);
        (*interval, run_at_interval(*interval, failures, rec.clone()))
    });
    for (interval, out) in outcomes {
        ckpt_cost = ckpt_cost.max(out.ckpt_cost_s);
        let model = IntervalModel {
            checkpoint_cost: SimDuration::from_secs_f64(out.ckpt_cost_s.max(1e-3)),
            restart_cost: SimDuration::from_secs_f64(out.ckpt_cost_s.max(1e-3)),
            mtbf: SimDuration::from_secs_f64(MTBF_S),
        };
        let predicted = model.efficiency(SimDuration::from_secs(interval));
        t.row(vec![
            interval.to_string(),
            fnum(out.efficiency * 100.0, 1) + "%",
            fnum(predicted * 100.0, 1) + "%",
            (out.attempts - 1).to_string(),
            fnum(out.ckpt_cost_s, 3),
        ]);
        rows.push(Comparison::new(
            format!("Availability / efficiency @interval {interval}s (vs Young model)"),
            predicted * 100.0,
            out.efficiency * 100.0,
            "%",
        ));
        if best.is_none_or(|(_, e)| out.efficiency > e) {
            best = Some((interval, out.efficiency));
        }
    }
    writeln!(body, "{}", t.render()).unwrap();
    let model = IntervalModel {
        checkpoint_cost: SimDuration::from_secs_f64(ckpt_cost.max(1e-3)),
        restart_cost: SimDuration::from_secs_f64(ckpt_cost.max(1e-3)),
        mtbf: SimDuration::from_secs_f64(MTBF_S),
    };
    let (best_i, best_e) = best.unwrap();
    writeln!(
        body,
        "measured optimum: interval {best_i} s at {:.1}% efficiency; Young's analytic \
         optimum: {:.1} s (Daly: {:.1} s)",
        best_e * 100.0,
        model.young_interval().as_secs_f64(),
        model.daly_interval().as_secs_f64()
    )
    .unwrap();
    ExperimentReport::new(body, rows).with_trace(tb.finish())
}

/// Print the availability study and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
