//! Table 2: memory footprint size (MB), maximum and average, per
//! application.
//!
//! Paper values: Sage-1000MB 954.6/779.5, Sage-500MB 497.3/407.3,
//! Sage-100MB 103.7/86.9, Sage-50MB 55/45.2, Sweep3D 105.5/105.5,
//! SP 40.1/40.1, LU 16.6/16.6, BT 76.5/76.5, FT 118/118.

use std::fmt::Write as _;

use ickpt::apps::Workload;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{Comparison, ExperimentReport, TextTable};

use crate::engine::parallel_map;
use crate::obs_glue::TraceBuilder;
use crate::{banner_string, footprint_mb, run};

/// Regenerate Table 2.
pub fn report() -> ExperimentReport {
    let mut body = banner_string("Table 2: Memory Footprint Size (MB)");
    let mut table =
        TextTable::new("").header(&["Application", "Maximum", "Average", "paper max", "paper avg"]);
    let mut comparisons = Vec::new();
    let mut tb = TraceBuilder::begin();
    let rows = parallel_map(&Workload::ALL, |&w| (w, run(w, 1)));
    for (w, report) in &rows {
        let w = *w;
        let (max, avg) = footprint_mb(report);
        tb.synthesize(w.name(), report);
        let c = w.calib();
        table.row(vec![
            w.name().to_string(),
            fnum(max, 1),
            fnum(avg, 1),
            fnum(c.footprint_max_mb, 1),
            fnum(c.footprint_avg_mb, 1),
        ]);
        comparisons.push(Comparison::new(
            format!("Table 2 / {} max footprint", w.name()),
            c.footprint_max_mb,
            max,
            "MB",
        ));
        comparisons.push(Comparison::new(
            format!("Table 2 / {} avg footprint", w.name()),
            c.footprint_avg_mb,
            avg,
            "MB",
        ));
    }
    writeln!(body, "{}", table.render()).unwrap();
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Print the regenerated table and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
