//! Figure 1: Sage-1000MB time series at a 1 s timeslice over 500
//! virtual seconds — (a) IWS size per timeslice, (b) data received per
//! timeslice.
//!
//! Paper shape: an initialization peak (~400 MB) at the very beginning,
//! then processing bursts every 145 s with IWS up to ~275-350 MB;
//! communication bursts of a few MB placed around the processing
//! bursts.

use std::fmt::Write as _;

use ickpt::core::metrics::{iws_series, received_series};
use ickpt::core::policy::{detect_bursts, detect_period};
use ickpt::sim::SimDuration;
use ickpt_analysis::{ascii_plot, Comparison, ExperimentReport};

use crate::engine::run_fig1;
use crate::obs_glue::TraceBuilder;
use crate::{banner_string, bench_scale};

/// Regenerate Figure 1 (both panels).
pub fn report() -> ExperimentReport {
    let mut body = banner_string("Figure 1: Sage-1000MB IWS and data received per 1 s timeslice");
    let report = run_fig1();
    let mut tb = TraceBuilder::begin();
    tb.synthesize("sage1000/500s", &report);
    let r0 = &report.ranks[0];
    let rescale = 1.0 / bench_scale();

    let iws: Vec<(f64, f64)> =
        iws_series(&r0.samples).into_iter().map(|(t, v)| (t, v * rescale)).collect();
    writeln!(body, "{}", ascii_plot("(a) IWS size per timeslice (MB)", &iws, 100, 16)).unwrap();

    let recv: Vec<(f64, f64)> =
        received_series(&r0.samples).into_iter().map(|(t, v)| (t, v * rescale)).collect();
    writeln!(body, "{}", ascii_plot("(b) data received per timeslice (MB)", &recv, 100, 12))
        .unwrap();

    // Quantitative shape checks.
    let series: Vec<u64> = r0.samples.iter().map(|s| s.iws_pages).collect();
    let period = detect_period(&series, SimDuration::from_secs(1), 10)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let init_peak = iws.iter().take(10).map(|&(_, v)| v).fold(0.0, f64::max);
    let bursts = detect_bursts(&r0.samples, 0.5, 10);
    writeln!(
        body,
        "shape: init peak {:.0} MB in the first 10 s; {} processing bursts; \
         burst period {:.0} s (paper: 145 s)",
        init_peak,
        bursts.bursts.len(),
        period
    )
    .unwrap();
    let comparisons = vec![
        Comparison::new("Fig 1a / Sage-1000MB burst period", 145.0, period, "s"),
        Comparison::new("Fig 1a / Sage-1000MB init peak", 400.0, init_peak, "MB"),
    ];
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Print the regenerated figure and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
