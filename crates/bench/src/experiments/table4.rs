//! Table 4: bandwidth requirements (MB/s) — maximum and average IB at
//! a 1 s timeslice — plus the §6.3 feasibility statements against the
//! QsNet II network (900 MB/s) and SCSI disk (320 MB/s).
//!
//! Paper values: Sage-1000MB 274.9/78.8, Sage-500MB 186.9/49.9,
//! Sage-100MB 42.6/15, Sage-50MB 24.9/9.6, Sweep3D 79.1/49.5,
//! SP 32.6/32.6, LU 12.5/12.5, BT 72.7/68.6, FT 101/92.1.

use std::fmt::Write as _;

use ickpt::apps::Workload;
use ickpt::core::feasibility::FeasibilityReport;
use ickpt_analysis::table::fnum;
use ickpt_analysis::{Comparison, ExperimentReport, TextTable};

use crate::engine::parallel_map;
use crate::obs_glue::TraceBuilder;
use crate::{banner_string, ib_stats, run};

/// Regenerate Table 4.
pub fn report() -> ExperimentReport {
    let mut body = banner_string("Table 4: Bandwidth Requirements (MB/s), timeslice 1 s");
    let mut table = TextTable::new("").header(&[
        "Application",
        "Maximum",
        "Average",
        "paper max",
        "paper avg",
        "net use",
        "disk use",
    ]);
    let mut comparisons = Vec::new();
    let mut all_feasible = true;
    let mut tb = TraceBuilder::begin();
    let rows = parallel_map(&Workload::ALL, |&w| (w, run(w, 1)));
    for (w, report) in &rows {
        let w = *w;
        let stats = ib_stats(w, report, 1);
        tb.synthesize(w.name(), report);
        let feas = FeasibilityReport::against_paper_devices(stats);
        all_feasible &= feas.feasible_everywhere();
        let c = w.calib();
        table.row(vec![
            w.name().to_string(),
            fnum(stats.max_mbps, 1),
            fnum(stats.avg_mbps, 1),
            fnum(c.max_ib_mbps, 1),
            fnum(c.avg_ib_mbps, 1),
            format!("{}%", fnum(feas.verdicts[0].avg_fraction * 100.0, 0)),
            format!("{}%", fnum(feas.verdicts[1].avg_fraction * 100.0, 0)),
        ]);
        comparisons.push(Comparison::new(
            format!("Table 4 / {} max IB @1s", w.name()),
            c.max_ib_mbps,
            stats.max_mbps,
            "MB/s",
        ));
        comparisons.push(Comparison::new(
            format!("Table 4 / {} avg IB @1s", w.name()),
            c.avg_ib_mbps,
            stats.avg_mbps,
            "MB/s",
        ));
    }
    writeln!(body, "{}", table.render()).unwrap();
    writeln!(
        body,
        "feasibility (§6.3): every application fits under the 900 MB/s network \
         and 320 MB/s disk peaks: {}",
        if all_feasible { "CONFIRMED" } else { "VIOLATED" }
    )
    .unwrap();
    ExperimentReport::new(body, comparisons).with_trace(tb.finish())
}

/// Print the regenerated table and return the comparison rows.
pub fn run_and_print() -> Vec<Comparison> {
    report().print()
}
