//! Criterion micro-benchmarks of the hot paths: the dirty bitmap, the
//! write-fault path, pattern slicing, the chunk codec, CRC-32, the
//! trace-engine record/re-bin pair, XOR parity encode/reconstruct, the
//! *real* page-fault cost through `mprotect`/`SIGSEGV`, and the
//! flight-recorder overhead (append, export, instrumented capture).

// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use ickpt::core::checkpoint::{
    capture_full_with, capture_incremental_with, CaptureConfig, CaptureScratch,
};
use ickpt::core::restore::{restore_rank_sequential, restore_rank_with, RestoreConfig};
use ickpt::core::tracker::{TrackerConfig, WriteTracker};
use ickpt::mem::{
    AddressSpace, BackedSpace, DirtyBitmap, FlatDirtyBitmap, LayoutBuilder, PageRange, PAGE_SIZE,
};
use ickpt::native::TrackedRegion;
use ickpt::sim::{SimDuration, SimTime};
use ickpt::storage::crc::{crc32, crc32_bytewise, crc32_slice8};
use ickpt::storage::{
    gc, hash64, kernels, page_block_hashes, xor_encode, xor_reconstruct, Chunk, ChunkKey,
    ChunkKind, MemStore, PageRecord, StableStorage, BLOCKS_PER_PAGE, BLOCK_SIZE,
};

fn bench_bitmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("dirty_bitmap");
    // 1 GB footprint = 262144 pages, the paper's largest per-process
    // image.
    let pages = 262_144u64;
    g.throughput(Throughput::Elements(pages));
    g.bench_function("set_range_full_image", |b| {
        let mut bm = DirtyBitmap::new(pages);
        b.iter(|| {
            bm.set_range(black_box(PageRange::new(0, pages)));
            bm.clear_all();
        });
    });
    g.bench_function("count_after_sparse_sets", |b| {
        let mut bm = DirtyBitmap::new(pages);
        for p in (0..pages).step_by(97) {
            bm.set(p);
        }
        b.iter(|| black_box(bm.count()));
    });
    g.bench_function("dirty_ranges_sparse", |b| {
        let mut bm = DirtyBitmap::new(pages);
        for p in (0..pages).step_by(97) {
            bm.set(p);
        }
        b.iter(|| black_box(bm.dirty_ranges().len()));
    });
    g.finish();
}

/// Hierarchical vs flat bitmap on the iteration/clear paths the write
/// tracker hits every timeslice. "Sparse" is the paper's common case: a
/// small IWS scattered across a 1 GB image, where the summary level
/// lets the hierarchical bitmap skip clean 4096-page blocks entirely.
fn bench_bitmap_hier_vs_flat(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_hier_vs_flat");
    let pages = 262_144u64;
    // ~64 scattered dirty pages out of 262144 (0.02% — a quiet window).
    let sparse: Vec<u64> = (0..pages).step_by(4099).collect();
    g.throughput(Throughput::Elements(pages));

    let mut hier = DirtyBitmap::new(pages);
    let mut flat = FlatDirtyBitmap::new(pages);
    for &p in &sparse {
        hier.set(p);
        flat.set(p);
    }
    g.bench_function("dirty_ranges_sparse_hier", |b| {
        b.iter(|| black_box(hier.dirty_ranges().len()))
    });
    g.bench_function("dirty_ranges_sparse_flat", |b| {
        b.iter(|| black_box(flat.dirty_ranges().len()))
    });
    g.bench_function("iter_sparse_hier", |b| b.iter(|| black_box(hier.iter_set().count())));
    g.bench_function("iter_sparse_flat", |b| b.iter(|| black_box(flat.iter_set().count())));
    g.bench_function("clear_all_sparse_hier", |b| {
        let mut bm = DirtyBitmap::new(pages);
        b.iter(|| {
            for &p in &sparse {
                bm.set(p);
            }
            bm.clear_all();
            black_box(bm.count())
        })
    });
    g.bench_function("clear_all_sparse_flat", |b| {
        let mut bm = FlatDirtyBitmap::new(pages);
        b.iter(|| {
            for &p in &sparse {
                bm.set(p);
            }
            bm.clear_all();
            black_box(bm.count())
        })
    });

    // Dense: everything dirty (an initialization sweep). The summary
    // level must not cost anything measurable here.
    let mut dhier = DirtyBitmap::new(pages);
    let mut dflat = FlatDirtyBitmap::new(pages);
    dhier.set_range(PageRange::new(0, pages));
    dflat.set_range(PageRange::new(0, pages));
    g.bench_function("dirty_ranges_dense_hier", |b| {
        b.iter(|| black_box(dhier.dirty_ranges().len()))
    });
    g.bench_function("dirty_ranges_dense_flat", |b| {
        b.iter(|| black_box(dflat.dirty_ranges().len()))
    });
    g.finish();
}

fn bench_tracker(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_tracker");
    let pages = 262_144u64;
    g.throughput(Throughput::Elements(pages));
    g.bench_function("touch_range_one_window", |b| {
        let cfg = TrackerConfig {
            timeslice: SimDuration::from_secs(1),
            track_checkpoint_set: true,
            ..Default::default()
        };
        let mut t = WriteTracker::new(pages, pages, cfg);
        let mut now = 0u64;
        b.iter(|| {
            t.touch_range(black_box(PageRange::new(0, pages)));
            now += 1_000_000_000;
            t.advance_to(ickpt::sim::SimTime(now));
        });
    });
    g.finish();
}

fn bench_chunk_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunk_codec");
    // A 16 MB incremental chunk (4096 pages).
    let chunk = Chunk {
        kind: ChunkKind::Incremental,
        rank: 0,
        generation: 5,
        parent: Some(4),
        capture_time_ns: 0,
        heap_pages: 4096,
        mmap_blocks: vec![(0, 4096)],
        zero_ranges: vec![],
        records: vec![PageRecord { start_page: 0, data: vec![0xA5; 4096 * 4096] }],
        delta_records: vec![],
        dropped_pages: 0,
        app_state: vec![0; 64],
    };
    let encoded = chunk.encode();
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_16mb", |b| b.iter(|| black_box(chunk.encode().len())));
    g.bench_function("decode_16mb", |b| {
        b.iter(|| black_box(Chunk::decode(&encoded).unwrap().payload_pages()))
    });
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    let data = vec![0x5Au8; 1 << 20];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("slice8_1mb", |b| b.iter(|| black_box(crc32(&data))));
    g.bench_function("bytewise_1mb", |b| b.iter(|| black_box(crc32_bytewise(&data))));
    g.finish();
}

/// Content layer: the 64-bit block hash against the slice-by-8 CRC the
/// chunk trailer already pays, and the hash-vs-copy crossover that
/// decides whether hashing a page to *maybe* drop it can lose to just
/// copying it. The dedup bet is `block_hashes_4k` ≪ `copy_4k` (page
/// cache hot, so the copy row is the memcpy floor, not disk).
fn bench_page_hash(c: &mut Criterion) {
    // Non-uniform bytes so neither hash collapses to a constant-fold.
    let data: Vec<u8> =
        (0..1usize << 20).map(|i| (i as u64).wrapping_mul(0x9E37_79B9) as u8).collect();

    let mut g = c.benchmark_group("page_hash");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("hash64_1mb", |b| b.iter(|| black_box(hash64(&data))));
    g.bench_function("crc32_slice8_1mb", |b| b.iter(|| black_box(crc32(&data))));
    g.finish();

    let mut g = c.benchmark_group("hash_vs_copy");
    let page = &data[..PAGE_SIZE as usize];
    g.throughput(Throughput::Bytes(PAGE_SIZE));
    g.bench_function("block_hashes_4k", |b| {
        let mut out = [0u64; BLOCKS_PER_PAGE];
        b.iter(|| {
            page_block_hashes(black_box(page), &mut out);
            black_box(out[0])
        })
    });
    g.bench_function("hash64_4k", |b| b.iter(|| black_box(hash64(page))));
    g.bench_function("copy_4k", |b| {
        let mut dst = vec![0u8; PAGE_SIZE as usize];
        b.iter(|| {
            dst.copy_from_slice(black_box(page));
            black_box(dst[17])
        })
    });
    g.bench_function("hash64_256b_block", |b| b.iter(|| black_box(hash64(&page[..256]))));
    // Crossover re-measurement with the fused kernel: the content
    // layer's real per-page cost is now one fused sweep, not
    // block-hashes + zero-scan stacked — compare against `copy_4k`.
    g.bench_function("fused_scan_4k", |b| {
        let mut out = [0u64; BLOCKS_PER_PAGE];
        b.iter(|| {
            let scan = kernels::fused_scan(black_box(page), &mut out);
            black_box((scan.page_hash, out[0]))
        })
    });
    g.finish();
}

/// The dispatched kernels (`ickpt-storage::kernels`) against the
/// scalar sequences they replace.
///
/// `kernels_fused_scan`: the headline fusion — `three_pass_16k` is the
/// pre-kernel capture sequence (scalar zero scan + full-page `hash64`
/// chain + per-256 B block hashes, three sweeps) and `fused_16k` is
/// one dispatched sweep computing the whole identity triple, with the
/// page hash derived merkle-style from the block digests;
/// `scalar_ref_16k` is the new-contract scalar reference (same triple,
/// no SIMD) and `fused_16k_portable` isolates the single-pass
/// restructuring without SIMD (the tier non-x86/aarch64 hosts get).
/// 16 KB input (the paper's page size) = 64 blocks; `*_4k` rows cover
/// the 4 KiB chunk page the capture loop actually feeds.
fn bench_kernels(c: &mut Criterion) {
    let data: Vec<u8> =
        (0..16usize << 10).map(|i| (i as u64).wrapping_mul(0x9E37_79B9) as u8).collect();
    let tables = kernels::available();
    let scalar = tables[0];
    let portable = tables[1];

    // The capture sequence this PR replaces: three separate scalar
    // sweeps, the page identity a serial full-page hash64 chain.
    fn three_pass(scalar: &kernels::Kernels, data: &[u8], out: &mut [u64]) -> (bool, u64) {
        for (slot, block) in out.iter_mut().zip(data.chunks_exact(BLOCK_SIZE)) {
            *slot = hash64(block);
        }
        ((scalar.is_zero)(data), hash64(data))
    }

    let mut g = c.benchmark_group("kernels_fused_scan");
    g.throughput(Throughput::Bytes(data.len() as u64));
    let blocks_16k = data.len() / BLOCK_SIZE;
    g.bench_function("three_pass_16k", |b| {
        let mut out = vec![0u64; blocks_16k];
        b.iter(|| {
            let (z, ph) = three_pass(&scalar, black_box(&data), &mut out);
            black_box((z, ph, out[0]))
        })
    });
    g.bench_function("scalar_ref_16k", |b| {
        let mut out = vec![0u64; blocks_16k];
        b.iter(|| {
            let scan = (scalar.fused_scan)(black_box(&data), &mut out);
            black_box((scan.is_zero, scan.page_hash, out[0]))
        })
    });
    g.bench_function("fused_16k_portable", |b| {
        let mut out = vec![0u64; blocks_16k];
        b.iter(|| {
            let scan = (portable.fused_scan)(black_box(&data), &mut out);
            black_box((scan.is_zero, scan.page_hash, out[0]))
        })
    });
    g.bench_function("fused_16k", |b| {
        let mut out = vec![0u64; blocks_16k];
        b.iter(|| {
            let scan = kernels::fused_scan(black_box(&data), &mut out);
            black_box((scan.is_zero, scan.page_hash, out[0]))
        })
    });
    let page = &data[..PAGE_SIZE as usize];
    g.throughput(Throughput::Bytes(PAGE_SIZE));
    g.bench_function("three_pass_4k", |b| {
        let mut out = vec![0u64; BLOCKS_PER_PAGE];
        b.iter(|| {
            let (z, ph) = three_pass(&scalar, black_box(page), &mut out);
            black_box((z, ph, out[0]))
        })
    });
    g.bench_function("fused_4k", |b| {
        let mut out = vec![0u64; BLOCKS_PER_PAGE];
        b.iter(|| {
            let scan = kernels::fused_scan(black_box(page), &mut out);
            black_box((scan.is_zero, scan.page_hash, out[0]))
        })
    });
    g.finish();

    // Parity XOR accumulate: dispatched (AVX2 where detected) vs the
    // scalar byte loop `xor_encode` used to run. The 16 KB rows are
    // L1-resident so ALU width shows; the 1 MB rows are the honest
    // streaming case, bounded by cache bandwidth on most hosts.
    let mut g = c.benchmark_group("xor_encode_simd");
    let len = 1usize << 20;
    let src: Vec<u8> = (0..len).map(|i| (i as u64).wrapping_mul(0xC2B2_AE3D) as u8).collect();
    let mut acc = vec![0u8; len];
    let small = 16usize << 10;
    g.throughput(Throughput::Bytes(small as u64));
    g.bench_function("scalar_16k", |b| {
        b.iter(|| {
            (scalar.xor_acc)(black_box(&mut acc[..small]), black_box(&src[..small]));
            black_box(acc[0])
        })
    });
    g.bench_function("auto_16k", |b| {
        b.iter(|| {
            kernels::xor_acc(black_box(&mut acc[..small]), black_box(&src[..small]));
            black_box(acc[0])
        })
    });
    g.throughput(Throughput::Bytes(len as u64));
    g.bench_function("scalar_1mb", |b| {
        b.iter(|| {
            (scalar.xor_acc)(black_box(&mut acc), black_box(&src));
            black_box(acc[0])
        })
    });
    g.bench_function("auto_1mb", |b| {
        b.iter(|| {
            kernels::xor_acc(black_box(&mut acc), black_box(&src));
            black_box(acc[0])
        })
    });
    g.finish();

    // CRC dispatch: PCLMULQDQ folding (where detected) vs slice-by-8
    // vs the bytewise reference, all computing identical sums.
    let mut g = c.benchmark_group("crc_dispatch");
    g.throughput(Throughput::Bytes(len as u64));
    g.bench_function("auto_1mb", |b| b.iter(|| black_box(crc32(black_box(&src)))));
    g.bench_function("slice8_1mb", |b| b.iter(|| black_box(crc32_slice8(black_box(&src)))));
    g.bench_function("is_zero_4k_zero_page", |b| {
        let zeros = vec![0u8; PAGE_SIZE as usize];
        b.iter(|| black_box(kernels::is_zero(black_box(&zeros))))
    });
    g.bench_function("bytes_eq_4k_equal", |b| {
        let a = &data[..PAGE_SIZE as usize];
        let bb = a.to_vec();
        b.iter(|| black_box(kernels::bytes_eq(black_box(a), black_box(&bb))))
    });
    g.finish();
}

/// Incremental capture with content dedup off / cold / warm on a fully
/// dirty image (size via `ICKPT_BENCH_CAPTURE_MB`). `off` is the
/// dirty-page floor: every flagged page is copied into the chunk.
/// `on_cold` hashes every page and still stores it — the worst-case CPU
/// overhead of the content layer, which the issue bounds at single-digit
/// percent over `off`. `on_warm` hashes every page and drops it as
/// silent-same — the effective-IB floor where no bytes reach storage.
fn bench_capture_dedup(c: &mut Criterion) {
    let mb: u64 =
        std::env::var("ICKPT_BENCH_CAPTURE_MB").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
    let pages = mb * (1 << 20) / PAGE_SIZE;
    let layout = LayoutBuilder::new()
        .static_bytes(4 * PAGE_SIZE)
        .heap_capacity_bytes(pages * PAGE_SIZE)
        .mmap_capacity_bytes(4 * PAGE_SIZE)
        .build();
    let mut space = BackedSpace::new(layout);
    space.heap_grow(pages - 4).unwrap();
    for r in space.mapped_ranges() {
        for p in r.iter() {
            space.fill_page(p, p.wrapping_mul(0x9E37_79B9)).unwrap();
        }
    }
    let ranges = space.mapped_ranges();
    let bytes = space.mapped_pages() * PAGE_SIZE;

    let mut g = c.benchmark_group("capture_dedup");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(20);

    let capture = |space: &BackedSpace,
                   ranges: &[PageRange],
                   cfg: &CaptureConfig,
                   scratch: &mut CaptureScratch| {
        let chunk = capture_incremental_with(space, 0, 2, 1, SimTime::ZERO, ranges, cfg, scratch);
        let pages = chunk.payload_pages();
        scratch.recycle(chunk);
        pages
    };

    {
        let cfg = CaptureConfig::serial();
        let mut scratch = CaptureScratch::new();
        g.bench_function(&format!("{mb}mb_off"), |b| {
            b.iter(|| black_box(capture(&space, &ranges, &cfg, &mut scratch)))
        });
    }
    {
        let cfg = CaptureConfig { dedup: true, ..CaptureConfig::serial() };
        let mut scratch = CaptureScratch::new();
        g.bench_function(&format!("{mb}mb_on_cold"), |b| {
            b.iter(|| {
                // Invalid baseline every pass: hash + store everything.
                scratch.dedup_index().reset();
                black_box(capture(&space, &ranges, &cfg, &mut scratch))
            })
        });
    }
    {
        let cfg = CaptureConfig { dedup: true, ..CaptureConfig::serial() };
        let mut scratch = CaptureScratch::new();
        // Prime the baseline once; the image never changes after, so
        // every measured pass drops all pages as silent-same.
        capture(&space, &ranges, &cfg, &mut scratch);
        g.bench_function(&format!("{mb}mb_on_warm"), |b| {
            b.iter(|| black_box(capture(&space, &ranges, &cfg, &mut scratch)))
        });
    }
    g.finish();
}

/// Full-image capture, serial vs parallel, on a Sage-like footprint.
///
/// Size via `ICKPT_BENCH_CAPTURE_MB` (default 256; the paper's largest
/// process image is ~1 GB). The parallel variants force the fan-out
/// path (`parallel_threshold_pages: 0`); on a single-core host they
/// measure the overhead of span splitting + merge, on a multi-core host
/// the speedup of the page-copy fan-out. All variants reuse one
/// [`CaptureScratch`], so steady-state captures are allocation-free.
fn bench_capture(c: &mut Criterion) {
    let mb: u64 =
        std::env::var("ICKPT_BENCH_CAPTURE_MB").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
    let pages = mb * (1 << 20) / PAGE_SIZE;
    let layout = LayoutBuilder::new()
        .static_bytes(4 * PAGE_SIZE)
        .heap_capacity_bytes(pages * PAGE_SIZE)
        .mmap_capacity_bytes(4 * PAGE_SIZE)
        .build();
    let mut space = BackedSpace::new(layout);
    space.heap_grow(pages - 4).unwrap();
    // ~87% of pages written, the rest left zero (fresh allocations), so
    // both the copy path and the zero-elision word scan are exercised.
    for r in space.mapped_ranges() {
        for p in r.iter() {
            if p % 8 != 5 {
                space.fill_page(p, p.wrapping_mul(0x9E37_79B9)).unwrap();
            }
        }
    }
    let bytes = space.mapped_pages() * PAGE_SIZE;

    let mut g = c.benchmark_group("capture_full");
    g.throughput(Throughput::Bytes(bytes));
    for workers in [1usize, 4, 8] {
        let id = if workers == 1 {
            format!("{mb}mb_serial")
        } else {
            format!("{mb}mb_{workers}workers")
        };
        let cfg = CaptureConfig { workers, parallel_threshold_pages: 0, ..Default::default() };
        let mut scratch = CaptureScratch::new();
        g.bench_function(&id, |b| {
            b.iter(|| {
                let chunk =
                    capture_full_with(&space, 0, 1, ickpt::sim::SimTime::ZERO, &cfg, &mut scratch);
                let pages = chunk.payload_pages();
                scratch.recycle(chunk);
                black_box(pages)
            })
        });
    }
    g.finish();
}

/// Planned restore vs sequential chain replay, plus plan-driven chain
/// compaction.
///
/// Size via `ICKPT_BENCH_RESTORE_MB` (default 64). Both chains share
/// one live set: a full base plus increments that all overwrite the
/// same quarter of the image. The planned restore decodes each live
/// page exactly once, so its page work is flat in chain length; the
/// sequential replay re-applies every superseded record, so its work
/// grows with every increment. `restore_planned/chainN_8workers`
/// additionally fans the plan's page copies across threads.
fn bench_restore(c: &mut Criterion) {
    let mb: u64 =
        std::env::var("ICKPT_BENCH_RESTORE_MB").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
    let pages = (mb * (1 << 20) / PAGE_SIZE).max(16);
    let layout = LayoutBuilder::new()
        .static_bytes(4 * PAGE_SIZE)
        .heap_capacity_bytes(pages * PAGE_SIZE)
        .mmap_capacity_bytes(4 * PAGE_SIZE)
        .build();
    let mut src = BackedSpace::new(layout);
    src.heap_grow(pages - 4).unwrap();
    for r in src.mapped_ranges() {
        for p in r.iter() {
            src.fill_page(p, p.wrapping_mul(0x9E37_79B9)).unwrap();
        }
    }
    // Every increment rewrites the same quarter of the heap, so the
    // live set (and therefore the planned restore's page reads) is
    // identical for the 2- and 32-increment chains.
    let window = {
        let heap = src.mapped_ranges()[1];
        PageRange::new(heap.start, heap.start + (pages / 4).max(1))
    };
    let build_chain = |increments: u64| -> MemStore {
        let store = MemStore::new();
        let cfg = CaptureConfig::serial();
        let mut scratch = CaptureScratch::new();
        let base = capture_full_with(&src, 0, 0, SimTime::ZERO, &cfg, &mut scratch);
        store.put_chunk(ChunkKey::new(0, 0), &base.encode()).unwrap();
        for g in 1..=increments {
            let chunk = capture_incremental_with(
                &src,
                0,
                g,
                g - 1,
                SimTime::ZERO,
                &[window],
                &cfg,
                &mut scratch,
            );
            store.put_chunk(ChunkKey::new(0, g), &chunk.encode()).unwrap();
        }
        store
    };
    let bytes = src.mapped_pages() * PAGE_SIZE;

    let mut g = c.benchmark_group("restore");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(20);
    for increments in [2u64, 32] {
        let store = build_chain(increments);
        for workers in [1usize, 8] {
            let id = if workers == 1 {
                format!("planned_chain{increments}_serial")
            } else {
                format!("planned_chain{increments}_{workers}workers")
            };
            let cfg = RestoreConfig { workers, parallel_threshold_pages: 0 };
            let mut space = BackedSpace::new(layout);
            g.bench_function(&id, |b| {
                b.iter(|| {
                    let rep = restore_rank_with(&store, 0, increments, &mut space, &cfg).unwrap();
                    black_box(rep.pages_applied)
                })
            });
        }
        let mut space = BackedSpace::new(layout);
        g.bench_function(&format!("sequential_chain{increments}"), |b| {
            b.iter(|| {
                let rep = restore_rank_sequential(&store, 0, increments, &mut space).unwrap();
                black_box(rep.pages_applied)
            })
        });
    }

    // Compaction: merge a 32-increment chain into one full chunk via
    // the restore plan (single pass, dead records never copied).
    let store = build_chain(32);
    let chain: Vec<Chunk> = (0..=32)
        .map(|g| Chunk::decode(&store.get_chunk(ChunkKey::new(0, g)).unwrap()).unwrap())
        .collect();
    drop(store);
    g.bench_function("gc_merge_chain32", |b| {
        b.iter(|| black_box(gc::merge_chain(&chain, None).payload_pages()))
    });
    g.finish();
}

/// Trace-once vs re-bin-many: the cost of recording one fine-grained
/// (1 s) write trace, and of deriving a coarse-timeslice report from it
/// afterwards. The whole point of the trace engine is the ratio between
/// these two rows: every additional timeslice costs one `rebin`, not
/// one `record`.
fn bench_trace(c: &mut Criterion) {
    use ickpt::apps::Workload;
    use ickpt::cluster::{characterize, CharacterizationConfig};
    use ickpt_bench::engine::WorkloadTrace;

    let cfg = CharacterizationConfig {
        nranks: 2,
        scale: 0.05,
        run_for: SimDuration::from_secs(60),
        timeslice: SimDuration::from_secs(1),
        seed: 0x1DC4_2004,
        track_iterations: true,
        trace_ranks: 1,
        ..Default::default()
    };
    let mut g = c.benchmark_group("trace_engine");
    g.bench_function("record_sage50_2ranks_60s", |b| {
        b.iter(|| black_box(characterize(Workload::Sage50, &cfg).ranks[0].samples.len()))
    });
    let wt = WorkloadTrace::from_report(characterize(Workload::Sage50, &cfg));
    g.bench_function("rebin_sage50_60s_to_5s", |b| {
        b.iter(|| {
            let report = wt.report_at(SimDuration::from_secs(5), SimDuration::from_secs(60), false);
            black_box(report.ranks[0].samples.len())
        })
    });
    g.finish();
}

/// XOR parity of a 4-member redundancy group: the per-generation cost
/// a holder pays to encode, and the cost of rebuilding a lost member
/// from the surviving three plus the parity block.
fn bench_xor_parity(c: &mut Criterion) {
    let mut g = c.benchmark_group("xor_parity");
    // Uneven member sizes to exercise the zero-padded tail path.
    let members: Vec<Vec<u8>> = (0u64..4)
        .map(|r| {
            let len = (4 << 20) - (r as usize) * 4096;
            (0..len).map(|i| (i as u64).wrapping_mul(r + 0x9E37).to_le_bytes()[0]).collect()
        })
        .collect();
    let views: Vec<(u32, &[u8])> =
        members.iter().enumerate().map(|(r, d)| (r as u32, d.as_slice())).collect();
    let total: u64 = members.iter().map(|m| m.len() as u64).sum();
    g.throughput(Throughput::Bytes(total));
    g.bench_function("encode_group4_16mb", |b| {
        b.iter(|| black_box(xor_encode(0, 7, &views).len()))
    });
    let parity = xor_encode(0, 7, &views);
    let survivors: Vec<(u32, &[u8])> = views.iter().filter(|(r, _)| *r != 2).copied().collect();
    g.bench_function("reconstruct_group4_16mb", |b| {
        b.iter(|| black_box(xor_reconstruct(&parity, &survivors, 2).unwrap().len()))
    });
    g.finish();
}

fn bench_native_fault(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_fault");
    // Cost of one protection fault + handler + mprotect, amortized over
    // a page sweep with per-sample re-protection.
    g.bench_function("fault_per_page", |b| {
        let region = TrackedRegion::new(256);
        b.iter(|| {
            for p in 0..256 {
                region.write_byte(p, 0, 1);
            }
            black_box(region.sample().iws_pages())
        });
    });
    g.bench_function("write_unprotected_page", |b| {
        let region = TrackedRegion::new(256);
        region.untrack();
        b.iter(|| {
            for p in 0..256 {
                region.write_byte(p, 0, 1);
            }
        });
    });
    g.finish();
}

/// Flight-recorder overhead: event append (enabled vs the disabled
/// no-op recorder), the two exporters on a populated log, and the
/// instrumented-vs-disabled delta of a full capture — the observability
/// claim is "zero cost when disabled, bounded cost when on".
fn bench_obs(c: &mut Criterion) {
    use ickpt::obs::{chrome_trace, jsonl, CaptureKind, Event, FlightRecorder, Lane, Recorder};

    let event = |i: u64| Event::Capture {
        kind: CaptureKind::Incremental,
        generation: i,
        pages: 64,
        payload_bytes: 64 * PAGE_SIZE,
    };

    let mut g = c.benchmark_group("obs");
    g.bench_function("event_append_enabled", |b| {
        let rec = Recorder::new(FlightRecorder::with_default_capacity());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rec.emit(Lane::Rank(0), SimTime(i), event(i));
            black_box(i)
        });
    });
    g.bench_function("event_append_disabled", |b| {
        let rec = Recorder::disabled();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rec.emit(Lane::Rank(0), SimTime(i), event(i));
            black_box(i)
        });
    });

    // Exporters over a 4-rank, 10k-event log.
    let fr = FlightRecorder::with_default_capacity();
    fr.name_group(0, "bench");
    let rec = Recorder::new(fr.clone());
    for i in 0..10_000u64 {
        rec.emit_span(Lane::Rank((i % 4) as u32), SimTime(i * 1_000), SimDuration(500), event(i));
    }
    let snap = fr.snapshot();
    g.bench_function("export_jsonl_10k", |b| b.iter(|| black_box(jsonl(&snap)).len()));
    g.bench_function("export_chrome_10k", |b| b.iter(|| black_box(chrome_trace(&snap)).len()));

    // Instrumented vs disabled capture of a 16 MB image: the recorder
    // adds one event per capture, so the delta must sit in the noise.
    let pages = 16 * (1 << 20) / PAGE_SIZE;
    let layout = LayoutBuilder::new()
        .static_bytes(4 * PAGE_SIZE)
        .heap_capacity_bytes(pages * PAGE_SIZE)
        .mmap_capacity_bytes(4 * PAGE_SIZE)
        .build();
    let mut space = BackedSpace::new(layout);
    space.heap_grow(pages - 4).unwrap();
    for r in space.mapped_ranges() {
        for p in r.iter() {
            space.fill_page(p, p.wrapping_mul(0x9E37_79B9)).unwrap();
        }
    }
    g.throughput(Throughput::Bytes(space.mapped_pages() * PAGE_SIZE));
    for (id, obs) in [
        ("capture_16mb_disabled", Recorder::disabled()),
        ("capture_16mb_instrumented", Recorder::new(FlightRecorder::with_default_capacity())),
    ] {
        let cfg = CaptureConfig { obs, ..Default::default() };
        let mut scratch = CaptureScratch::new();
        g.bench_function(id, |b| {
            b.iter(|| {
                let chunk = capture_full_with(&space, 0, 1, SimTime::ZERO, &cfg, &mut scratch);
                let pages = chunk.payload_pages();
                scratch.recycle(chunk);
                black_box(pages)
            })
        });
    }
    g.finish();
}

/// Metrics-plane overhead: one event ingested through the recorder tee
/// with only the plane attached (counter + window + histogram updates)
/// vs the fully disabled recorder (two pointer tests), a raw log₂
/// histogram record and quantile, the text-snapshot export over a
/// populated plane, and the instrumented-vs-off delta of a 16 MB
/// capture with the plane teed in — the tentpole's "sub-ns when off,
/// bounded when on" claim, with `ickpt_meta_*` op counts from any run
/// multiplying against these per-op rows.
fn bench_metrics(c: &mut Criterion) {
    use ickpt::obs::{
        CaptureKind, Event, Lane, LogHistogram, MetricsPlane, Recorder, HIST_BUCKETS,
    };

    let event = |i: u64| Event::Capture {
        kind: CaptureKind::Incremental,
        generation: i,
        pages: 64,
        payload_bytes: 64 * PAGE_SIZE,
    };
    let stall = |i: u64| Event::CheckpointStall { generation: i };

    let mut g = c.benchmark_group("metrics");
    g.bench_function("event_ingest_enabled", |b| {
        let plane = MetricsPlane::new(SimDuration::from_secs(1));
        plane.name_group(0, "bench");
        let rec = Recorder::disabled().with_metrics(plane);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rec.emit(Lane::Rank(0), SimTime(i * 1_000_000), event(i));
            black_box(i)
        });
    });
    g.bench_function("span_ingest_enabled", |b| {
        let plane = MetricsPlane::new(SimDuration::from_secs(1));
        plane.name_group(0, "bench");
        let rec = Recorder::disabled().with_metrics(plane);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rec.emit_span(Lane::Rank(0), SimTime(i * 1_000_000), SimDuration(500_000), stall(i));
            black_box(i)
        });
    });
    g.bench_function("event_ingest_disabled", |b| {
        let rec = Recorder::disabled();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            rec.emit(Lane::Rank(0), SimTime(i * 1_000_000), event(i));
            black_box(i)
        });
    });
    g.bench_function("hist_record", |b| {
        let mut h = LogHistogram::new();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            h.record(black_box(i));
            black_box(h.count())
        });
    });
    g.bench_function("hist_quantile_p99", |b| {
        let mut h = LogHistogram::new();
        for i in 0..10_000u64 {
            h.record(i.wrapping_mul(0x9E37_79B9) >> 20);
        }
        b.iter(|| black_box(h.quantile(99)));
    });
    g.bench_function("hist_merge_65buckets", |b| {
        let mut a = LogHistogram::new();
        let mut o = LogHistogram::new();
        for i in 0..HIST_BUCKETS as u64 {
            a.record(1 << (i % 40));
            o.record(3 << (i % 40));
        }
        b.iter(|| {
            a.merge(black_box(&o));
            black_box(a.count())
        });
    });

    // Snapshot export over a populated plane: 2 groups, mixed event
    // kinds across 60 virtual seconds of 1 s windows.
    let plane = MetricsPlane::new(SimDuration::from_secs(1));
    for group in 0..2u32 {
        plane.name_group(group, if group == 0 { "warm" } else { "cold" });
        let rec = Recorder::disabled().with_group(group).with_metrics(plane.clone());
        for i in 0..5_000u64 {
            let at = SimTime(i * 12_000_000);
            rec.emit(Lane::Rank((i % 4) as u32), at, event(i));
            rec.emit_span(Lane::Rank((i % 4) as u32), at, SimDuration(500_000), stall(i));
        }
    }
    g.bench_function("render_text_2groups", |b| b.iter(|| black_box(plane.render_text().len())));

    // Instrumented vs off: a 16 MB capture with the metrics plane teed
    // into the capture path's recorder. Pairs with the flight-recorder
    // rows in `obs/capture_16mb_*`; the regression gate compares the
    // `_off` row against the previous PR's baseline.
    let pages = 16 * (1 << 20) / PAGE_SIZE;
    let layout = LayoutBuilder::new()
        .static_bytes(4 * PAGE_SIZE)
        .heap_capacity_bytes(pages * PAGE_SIZE)
        .mmap_capacity_bytes(4 * PAGE_SIZE)
        .build();
    let mut space = BackedSpace::new(layout);
    space.heap_grow(pages - 4).unwrap();
    for r in space.mapped_ranges() {
        for p in r.iter() {
            space.fill_page(p, p.wrapping_mul(0x9E37_79B9)).unwrap();
        }
    }
    let metered = {
        let plane = MetricsPlane::new(SimDuration::from_secs(1));
        plane.name_group(0, "bench");
        Recorder::disabled().with_metrics(plane)
    };
    g.throughput(Throughput::Bytes(space.mapped_pages() * PAGE_SIZE));
    for (id, obs) in [("capture_16mb_off", Recorder::disabled()), ("capture_16mb_metered", metered)]
    {
        let cfg = CaptureConfig { obs, ..Default::default() };
        let mut scratch = CaptureScratch::new();
        g.bench_function(id, |b| {
            b.iter(|| {
                let chunk = capture_full_with(&space, 0, 1, SimTime::ZERO, &cfg, &mut scratch);
                let pages = chunk.payload_pages();
                scratch.recycle(chunk);
                black_box(pages)
            })
        });
    }
    g.finish();
}

/// Ranks-per-second of the two characterization paths: the
/// event-wheel engine (the default) vs the legacy one-thread-per-rank
/// reference. Criterion's elements/s readout IS ranks/s here. The
/// rank count is deliberately modest so the threaded reference stays
/// benchmarkable; `fig5_extended` (and BENCH_PR7.json) carry the
/// 4096/16384-rank wall-clock numbers.
fn bench_cluster_ranks(c: &mut Criterion) {
    use ickpt::apps::Workload;
    use ickpt::cluster::{
        characterize, characterize_model_threaded, CharacterizationConfig, ReportDetail,
    };
    const NRANKS: usize = 256;
    let w = Workload::Sage100;
    let cfg = CharacterizationConfig {
        nranks: NRANKS,
        scale: 0.02,
        run_for: SimDuration::from_secs(20),
        detail: ReportDetail::compact(),
        ..Default::default()
    };
    let mut g = c.benchmark_group("cluster_ranks_per_sec");
    g.sample_size(10);
    g.throughput(Throughput::Elements(NRANKS as u64));
    g.bench_function("event_engine_256ranks", |b| {
        b.iter(|| black_box(characterize(w, &cfg).ranks.len()))
    });
    g.bench_function("threaded_reference_256ranks", |b| {
        b.iter(|| {
            let layout = w.layout(cfg.scale);
            let report = characterize_model_threaded(&cfg, layout, |rank| {
                Box::new(w.build(rank, cfg.nranks, cfg.scale, cfg.seed))
            });
            black_box(report.ranks.len())
        })
    });
    g.finish();
}

/// Multi-tenant service hot paths: the admission decision (token
/// refill + charge), a DRR scheduler pick under a populated 64-tenant
/// ring, and striped-drain throughput at 1/2/4 devices (bytes/s here
/// is *virtual* bytes charged per host second — the simulation cost of
/// a drain, not the modeled array speed).
fn bench_svc(c: &mut Criterion) {
    use ickpt::sim::StripedArray;
    use ickpt::svc::{AdmissionConfig, ChunkJob, SchedPolicy, Scheduler, TokenBucket};

    let mut g = c.benchmark_group("svc");
    g.bench_function("admission_decision", |b| {
        let cfg = AdmissionConfig::default();
        let mut bucket = TokenBucket::for_weight(&cfg, 2);
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000_000;
            black_box(bucket.admit(SimTime(now), 1_000_000))
        });
    });
    g.bench_function("drr_pick_64_tenants", |b| {
        let weights = vec![2u32; 64];
        let mut s = Scheduler::new(SchedPolicy::FairShare, &weights, 4_000_000);
        let mut i = 0u64;
        b.iter(|| {
            // Keep the ring populated: one enqueue per pick.
            i += 1;
            s.enqueue(ChunkJob { tenant: (i % 64) as u32, req: i, bytes: 4_000_000 });
            black_box(s.pick())
        });
    });
    for devices in [1usize, 2, 4] {
        // One 64 MB drain split into 4 MB stripe chunks.
        let total = 64u64 << 20;
        g.throughput(Throughput::Bytes(total));
        g.bench_function(&format!("striped_drain_64mb_{devices}dev"), |b| {
            let mut arr = StripedArray::homogeneous(
                devices,
                320_000_000,
                SimDuration::from_millis(4),
                4 << 20,
            );
            let mut now = 0u64;
            b.iter(|| {
                now += 1_000_000_000;
                black_box(arr.write(SimTime(now), total).done)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bitmap,
    bench_bitmap_hier_vs_flat,
    bench_tracker,
    bench_chunk_codec,
    bench_crc,
    bench_page_hash,
    bench_kernels,
    bench_capture_dedup,
    bench_capture,
    bench_restore,
    bench_trace,
    bench_xor_parity,
    bench_native_fault,
    bench_obs,
    bench_metrics,
    bench_cluster_ranks,
    bench_svc
);
criterion_main!(benches);
