//! Criterion micro-benchmarks of the hot paths: the dirty bitmap, the
//! write-fault path, pattern slicing, the chunk codec, CRC-32, the
//! collective rendezvous, and the *real* page-fault cost through
//! `mprotect`/`SIGSEGV`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use ickpt::core::tracker::{TrackerConfig, WriteTracker};
use ickpt::mem::{DirtyBitmap, PageRange};
use ickpt::native::TrackedRegion;
use ickpt::sim::SimDuration;
use ickpt::storage::crc::crc32;
use ickpt::storage::{Chunk, ChunkKind, PageRecord};

fn bench_bitmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("dirty_bitmap");
    // 1 GB footprint = 262144 pages, the paper's largest per-process
    // image.
    let pages = 262_144u64;
    g.throughput(Throughput::Elements(pages));
    g.bench_function("set_range_full_image", |b| {
        let mut bm = DirtyBitmap::new(pages);
        b.iter(|| {
            bm.set_range(black_box(PageRange::new(0, pages)));
            bm.clear_all();
        });
    });
    g.bench_function("count_after_sparse_sets", |b| {
        let mut bm = DirtyBitmap::new(pages);
        for p in (0..pages).step_by(97) {
            bm.set(p);
        }
        b.iter(|| black_box(bm.count()));
    });
    g.bench_function("dirty_ranges_sparse", |b| {
        let mut bm = DirtyBitmap::new(pages);
        for p in (0..pages).step_by(97) {
            bm.set(p);
        }
        b.iter(|| black_box(bm.dirty_ranges().len()));
    });
    g.finish();
}

fn bench_tracker(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_tracker");
    let pages = 262_144u64;
    g.throughput(Throughput::Elements(pages));
    g.bench_function("touch_range_one_window", |b| {
        let cfg = TrackerConfig {
            timeslice: SimDuration::from_secs(1),
            track_checkpoint_set: true,
            ..Default::default()
        };
        let mut t = WriteTracker::new(pages, pages, cfg);
        let mut now = 0u64;
        b.iter(|| {
            t.touch_range(black_box(PageRange::new(0, pages)));
            now += 1_000_000_000;
            t.advance_to(ickpt::sim::SimTime(now));
        });
    });
    g.finish();
}

fn bench_chunk_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunk_codec");
    // A 16 MB incremental chunk (4096 pages).
    let chunk = Chunk {
        kind: ChunkKind::Incremental,
        rank: 0,
        generation: 5,
        parent: Some(4),
        capture_time_ns: 0,
        heap_pages: 4096,
        mmap_blocks: vec![(0, 4096)],
        zero_ranges: vec![],
        records: vec![PageRecord { start_page: 0, data: vec![0xA5; 4096 * 4096] }],
        app_state: vec![0; 64],
    };
    let encoded = chunk.encode();
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_16mb", |b| b.iter(|| black_box(chunk.encode().len())));
    g.bench_function("decode_16mb", |b| {
        b.iter(|| black_box(Chunk::decode(&encoded).unwrap().payload_pages()))
    });
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    let data = vec![0x5Au8; 1 << 20];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("1mb", |b| b.iter(|| black_box(crc32(&data))));
    g.finish();
}

fn bench_native_fault(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_fault");
    // Cost of one protection fault + handler + mprotect, amortized over
    // a page sweep with per-sample re-protection.
    g.bench_function("fault_per_page", |b| {
        let region = TrackedRegion::new(256);
        b.iter(|| {
            for p in 0..256 {
                region.write_byte(p, 0, 1);
            }
            black_box(region.sample().iws_pages())
        });
    });
    g.bench_function("write_unprotected_page", |b| {
        let region = TrackedRegion::new(256);
        region.untrack();
        b.iter(|| {
            for p in 0..256 {
                region.write_byte(p, 0, 1);
            }
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bitmap,
    bench_tracker,
    bench_chunk_codec,
    bench_crc,
    bench_native_fault
);
criterion_main!(benches);
