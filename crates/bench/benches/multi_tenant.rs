//! Multi-tenant service study: aggregate throughput and stall tails
//! when N jobs share one striped durable array, plus the fair-share /
//! FIFO / strict-priority interference ablation.
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::multi_tenant::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("service QoS claims", &rows));
}
