//! Effective-IB study: content dedup + delta encoding vs dirty-page
//! accounting on the modelled applications.
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::effective_ib::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("accounting vs measurement", &rows));
}
