//! Regenerates the paper's Figure 2 (IB vs timeslice, six panels).
fn main() {
    let rows = ickpt_bench::experiments::fig2::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
