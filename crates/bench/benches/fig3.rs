//! Regenerates the paper's Figure 3 (avg IB vs timeslice, Sage sizes).
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::fig3::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
