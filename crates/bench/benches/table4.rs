//! Regenerates the paper's Table 4 (bandwidth requirements at 1 s).
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::table4::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
