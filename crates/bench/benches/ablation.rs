//! Ablations: incremental vs full traffic, interval sweep, chain length and gc.
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::ablation::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("expectations vs measured", &rows));
}
