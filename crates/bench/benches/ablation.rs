//! Ablations: incremental vs full traffic, interval sweep, chain length and gc.
fn main() {
    let rows = ickpt_bench::experiments::ablation::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("expectations vs measured", &rows));
}
