//! Regenerates the paper's Figure 1 (Sage-1000MB IWS / traffic series).
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::fig1::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
