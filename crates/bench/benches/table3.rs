//! Regenerates the paper's Table 3 (iteration period, % overwritten).
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::table3::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
