//! Regenerates the paper's Figure 5 (weak scaling, 8-64 processors).
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::fig5::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
