//! Regenerates the paper's Table 2 (memory footprints).
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::table2::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
