#![allow(clippy::disallowed_macros)]
fn main() {
    let rows = ickpt_bench::experiments::fig5_extended::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
