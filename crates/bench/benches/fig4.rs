//! Regenerates the paper's Figure 4 (IWS:footprint ratio vs timeslice).
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::fig4::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
