//! Regenerates the paper's Figure 4 (IWS:footprint ratio vs timeslice).
fn main() {
    let rows = ickpt_bench::experiments::fig4::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
