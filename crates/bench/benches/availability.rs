//! Availability study: measured efficiency under a failure process vs
//! Young's analytic checkpoint-interval model.
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::availability::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("model vs measured", &rows));
}
