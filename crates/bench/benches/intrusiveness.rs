//! Regenerates the paper's §6.5 intrusiveness experiment (simulated + native).
// Terminal-facing target: printing is its job.
#![allow(clippy::disallowed_macros)]

fn main() {
    let rows = ickpt_bench::experiments::intrusive::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
