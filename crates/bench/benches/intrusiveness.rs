//! Regenerates the paper's §6.5 intrusiveness experiment (simulated + native).
fn main() {
    let rows = ickpt_bench::experiments::intrusive::run_and_print();
    println!("{}", ickpt_analysis::compare::comparison_table("paper vs measured", &rows));
}
