//! Calendar-queue event scheduling: the [`EventWheel`].
//!
//! The event-driven cluster engine needs a priority queue over
//! [`SimTime`] that stays cheap at tens of thousands of pending events.
//! A binary heap is `O(log n)` per operation and — worse for
//! determinism — provides no stable order for equal keys. The classic
//! calendar queue (Brown, CACM 1988) buckets events by time so insert
//! and pop are amortized `O(1)`, and a global sequence number gives a
//! deterministic FIFO tie-break within a timestamp: two events pushed
//! at the same `SimTime` pop in push order, always, regardless of
//! bucket layout or resize history.
//!
//! Implementation notes:
//!
//! * Buckets are a power-of-two ring over *years* (`time / width`); an
//!   entry lives in bucket `year & mask`. Popping scans from the
//!   current year; a whole lap without a hit falls back to a direct
//!   min-year scan, so sparse far-future schedules don't spin.
//! * The entries of the year being drained are sorted once into a run
//!   (`current`) and popped from the front. Pushes that land at or
//!   before the scan horizon binary-insert into the run, so
//!   out-of-order ("past") pushes are legal and still pop in exact
//!   `(time, seq)` order — the property the scheduler tests pin against
//!   a [`std::collections::BinaryHeap`] reference model.
//! * The ring doubles when occupancy exceeds [`OCCUPANCY`] entries per
//!   bucket, keeping the amortized cost constant as the engine scales
//!   from 16 to 16k ranks. Nothing here consults wall-clock time or
//!   randomness: the wheel is bit-for-bit deterministic.

use std::collections::VecDeque;

use crate::clock::SimTime;

/// Default bucket width: ~1 ms of virtual time (2^20 ns). Events of a
/// bulk-synchronous round cluster far tighter than this, so a round
/// drains as one sorted run.
pub const DEFAULT_BUCKET_NS: u64 = 1 << 20;

/// Ring doubling threshold: average entries per bucket.
const OCCUPANCY: usize = 4;

/// Minimum ring size (power of two).
const MIN_BUCKETS: usize = 16;

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

/// A deterministic calendar-queue priority queue over [`SimTime`].
///
/// ```
/// use ickpt_sim::sched::EventWheel;
/// use ickpt_sim::SimTime;
///
/// let mut w = EventWheel::new();
/// w.push(SimTime::from_secs(2), "late");
/// w.push(SimTime::from_secs(1), "early");
/// w.push(SimTime::from_secs(1), "early-2"); // FIFO within a timestamp
/// assert_eq!(w.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(w.pop(), Some((SimTime::from_secs(1), "early-2")));
/// assert_eq!(w.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(w.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventWheel<T> {
    /// Ring of per-slot entry lists; an entry's slot is
    /// `(time / width) & mask`.
    buckets: Vec<Vec<Entry<T>>>,
    mask: u64,
    /// Bucket width in virtual nanoseconds (power of two).
    width: u64,
    /// Next year the pop scan will visit. Everything strictly before
    /// this year has been moved into `current`.
    cursor_year: u64,
    /// The sorted run being drained: entries with
    /// `year < cursor_year`, ascending `(time, seq)`.
    current: VecDeque<Entry<T>>,
    len: usize,
    seq: u64,
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventWheel<T> {
    /// An empty wheel with the default ~1 ms bucket width.
    pub fn new() -> Self {
        Self::with_bucket_ns(DEFAULT_BUCKET_NS)
    }

    /// An empty wheel with buckets of `width_ns` virtual nanoseconds
    /// (rounded up to a power of two).
    pub fn with_bucket_ns(width_ns: u64) -> Self {
        let width = width_ns.max(1).next_power_of_two();
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: MIN_BUCKETS as u64 - 1,
            width,
            cursor_year: 0,
            current: VecDeque::new(),
            len: 0,
            seq: 0,
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn year_of(&self, time: SimTime) -> u64 {
        time.0 / self.width
    }

    /// Schedule `item` at `time`. Events at equal times pop in push
    /// order (FIFO). Pushing earlier than already-popped times is
    /// allowed; such events simply become the next to pop.
    pub fn push(&mut self, time: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { time, seq, item };
        let year = self.year_of(time);
        if year < self.cursor_year {
            // At or before the scan horizon: merge into the sorted run
            // so global (time, seq) order is preserved.
            let key = (entry.time, entry.seq);
            let at = self.current.partition_point(|e| (e.time, e.seq) < key);
            self.current.insert(at, entry);
        } else {
            let slot = (year & self.mask) as usize;
            self.buckets[slot].push(entry);
        }
        self.len += 1;
        self.maybe_grow();
    }

    /// Remove and return the earliest event as `(time, item)`; ties pop
    /// in push order.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.current.is_empty() && !self.refill() {
            return None;
        }
        let e = self.current.pop_front().expect("refill guarantees a run");
        self.len -= 1;
        Some((e.time, e.item))
    }

    /// The earliest pending event time, without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.current.is_empty() && !self.refill() {
            return None;
        }
        self.current.front().map(|e| e.time)
    }

    /// Move the next non-empty year's entries into the sorted run.
    /// Returns false when the wheel is empty.
    fn refill(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        let nbuckets = self.buckets.len() as u64;
        // Scan at most one lap from the cursor; beyond that the
        // schedule is sparse, so jump straight to the minimum year.
        let mut year = self.cursor_year;
        let lap_end = self.cursor_year + nbuckets;
        loop {
            if year == lap_end {
                year = self.min_year().expect("len > 0 but no bucket entry");
            }
            let slot = (year & self.mask) as usize;
            if self.buckets[slot].iter().any(|e| self.year_key(e) == year) {
                break;
            }
            year += 1;
        }
        let slot = (year & self.mask) as usize;
        let bucket = std::mem::take(&mut self.buckets[slot]);
        let (mut run, keep): (Vec<_>, Vec<_>) =
            bucket.into_iter().partition(|e| e.time.0 / self.width == year);
        self.buckets[slot] = keep;
        run.sort_by_key(|e| (e.time, e.seq));
        self.current = run.into();
        self.cursor_year = year + 1;
        true
    }

    #[inline]
    fn year_key(&self, e: &Entry<T>) -> u64 {
        e.time.0 / self.width
    }

    fn min_year(&self) -> Option<u64> {
        self.buckets.iter().flatten().map(|e| self.year_key(e)).min()
    }

    fn maybe_grow(&mut self) {
        if self.len - self.current.len() <= self.buckets.len() * OCCUPANCY {
            return;
        }
        let new_n = (self.buckets.len() * 2).next_power_of_two();
        let mut buckets: Vec<Vec<Entry<T>>> = (0..new_n).map(|_| Vec::new()).collect();
        let mask = new_n as u64 - 1;
        for e in self.buckets.drain(..).flatten() {
            let slot = ((e.time.0 / self.width) & mask) as usize;
            buckets[slot].push(e);
        }
        self.buckets = buckets;
        self.mask = mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = EventWheel::new();
        for t in [5u64, 1, 9, 3, 7] {
            w.push(SimTime::from_secs(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = w.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn fifo_tie_break_within_a_timestamp() {
        let mut w = EventWheel::new();
        for i in 0..100 {
            w.push(SimTime::from_secs(1), i);
        }
        let out: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, v)| v).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_allows_past_pushes() {
        let mut w = EventWheel::new();
        w.push(SimTime::from_secs(10), "a");
        assert_eq!(w.pop().unwrap().1, "a");
        // Push earlier than the last popped time: still legal.
        w.push(SimTime::from_secs(1), "past");
        w.push(SimTime::from_secs(20), "future");
        assert_eq!(w.pop().unwrap().1, "past");
        assert_eq!(w.pop().unwrap().1, "future");
        assert!(w.is_empty());
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        let mut w = EventWheel::new();
        w.push(SimTime::from_secs(100_000), 1u32);
        w.push(SimTime::from_secs(500_000), 2);
        assert_eq!(w.pop(), Some((SimTime::from_secs(100_000), 1)));
        assert_eq!(w.pop(), Some((SimTime::from_secs(500_000), 2)));
    }

    #[test]
    fn same_bucket_different_times_sort() {
        // Entries within one bucket year must still sort by exact time.
        let mut w = EventWheel::with_bucket_ns(1 << 30); // ~1 s buckets
        w.push(SimTime(800_000_000), "late");
        w.push(SimTime(100_000_000), "early");
        assert_eq!(w.pop().unwrap().1, "early");
        assert_eq!(w.pop().unwrap().1, "late");
    }

    #[test]
    fn grows_past_many_entries() {
        let mut w = EventWheel::new();
        let n = 10_000u64;
        for i in 0..n {
            // Deterministic scatter over ~16 s.
            w.push(SimTime(i.wrapping_mul(0x9E37_79B9) % 16_000_000_000), i);
        }
        assert_eq!(w.len(), n as usize);
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = w.pop() {
            assert!(t >= prev, "pop order must be non-decreasing");
            prev = t;
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = EventWheel::new();
        assert_eq!(w.peek_time(), None);
        w.push(SimTime::from_secs(3), ());
        w.push(SimTime::from_secs(2), ());
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(w.pop().unwrap().0, SimTime::from_secs(2));
    }
}
