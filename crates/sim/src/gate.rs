//! Thread fan-out capping: the [`WorkerGate`].
//!
//! The legacy (reference) cluster paths run one OS thread per rank.
//! At thousands of ranks that is thousands of runnable threads
//! thrashing the host scheduler. A [`WorkerGate`] is a counting
//! semaphore bounding how many rank threads *execute* concurrently:
//! each thread holds one permit while computing and releases it around
//! every blocking virtual-time wait (rendezvous, message receive), so
//! a blocked rank never starves the ranks it is waiting on — the
//! release-while-blocked discipline that makes the cap deadlock-free.
//!
//! Virtual-time results are unaffected: the gate only changes *when*
//! threads run on the host, never what they compute.

use parking_lot::{Condvar, Mutex};

/// A counting semaphore for capping concurrent rank execution.
pub struct WorkerGate {
    free: Mutex<usize>,
    cv: Condvar,
}

impl WorkerGate {
    /// A gate with `permits` concurrent execution slots (minimum 1).
    pub fn new(permits: usize) -> Self {
        Self { free: Mutex::new(permits.max(1)), cv: Condvar::new() }
    }

    /// Take one permit, blocking until one is available.
    pub fn acquire(&self) {
        let mut free = self.free.lock();
        while *free == 0 {
            self.cv.wait(&mut free);
        }
        *free -= 1;
    }

    /// Return one permit and wake one waiter.
    pub fn release(&self) {
        let mut free = self.free.lock();
        *free += 1;
        self.cv.notify_one();
    }

    /// Acquire a permit held until the returned guard drops (including
    /// on unwind, so a panicking rank thread cannot strand the pool).
    pub fn permit(&self) -> Permit<'_> {
        self.acquire();
        Permit(self)
    }
}

/// RAII guard of one [`WorkerGate`] permit.
pub struct Permit<'a>(&'a WorkerGate);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn caps_concurrency() {
        let gate = Arc::new(WorkerGate::new(2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (gate, running, peak) = (gate.clone(), running.clone(), peak.clone());
                std::thread::spawn(move || {
                    gate.acquire();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    running.fetch_sub(1, Ordering::SeqCst);
                    gate.release();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {:?}", peak);
    }

    #[test]
    fn release_while_blocked_lets_waiters_in() {
        // One permit; a thread releases around a simulated blocking
        // wait; a second thread must get through during that window.
        let gate = Arc::new(WorkerGate::new(1));
        gate.acquire();
        let g2 = gate.clone();
        let h = std::thread::spawn(move || {
            g2.acquire();
            g2.release();
        });
        gate.release(); // release-while-blocked window
        h.join().unwrap();
        gate.acquire(); // reacquire after "wake"
        gate.release();
    }

    #[test]
    fn zero_permits_clamps_to_one() {
        let gate = WorkerGate::new(0);
        gate.acquire();
        gate.release();
    }
}
