//! Bandwidth/latency device models.
//!
//! §3 of the paper identifies two potential bottlenecks for saving
//! checkpoint data: the interconnection network and the storage device.
//! Its reference numbers are the Quadrics QsNet II NIC at **900 MB/s**
//! peak and a SCSI (Seagate Cheetah) disk at **320 MB/s** peak, and the
//! feasibility argument compares required incremental bandwidth against
//! them. This module models such devices as a (latency, bandwidth) pair
//! with FIFO queuing: a transfer issued at `t` starts when the device is
//! free, occupies it for `bytes / bandwidth`, and completes after an
//! additional fixed latency.

use parking_lot::Mutex;
use std::sync::Arc;

use crate::clock::{SimDuration, SimTime};

/// Named device presets with the paper's reference numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevicePreset {
    /// Quadrics QsNet II: 900 MB/s peak, ~2 µs MPI-level latency (§3).
    QsNet2,
    /// Quadrics QsNet (Elan3), the cluster's installed network:
    /// ~340 MB/s per rail, ~5 µs latency.
    QsNet,
    /// SCSI disk (Seagate Cheetah-class): 320 MB/s peak, ~4 ms access.
    ScsiDisk,
    /// 2004-era local memory copy path (~2 GB/s), used for the bounce
    /// buffer copy cost.
    MemoryCopy,
    /// Node-local checkpoint cache (RAM-disk / local scratch class,
    /// ~1 GB/s, ~10 µs): the fast first tier of a multilevel scheme,
    /// as in SCR's node-local cache.
    NodeLocal,
}

impl DevicePreset {
    /// Bandwidth in bytes/second.
    pub fn bandwidth(&self) -> u64 {
        match self {
            DevicePreset::QsNet2 => 900_000_000,
            DevicePreset::QsNet => 340_000_000,
            DevicePreset::ScsiDisk => 320_000_000,
            DevicePreset::MemoryCopy => 2_000_000_000,
            DevicePreset::NodeLocal => 1_000_000_000,
        }
    }

    /// Fixed per-operation latency.
    pub fn latency(&self) -> SimDuration {
        match self {
            DevicePreset::QsNet2 => SimDuration::from_micros(2),
            DevicePreset::QsNet => SimDuration::from_micros(5),
            DevicePreset::ScsiDisk => SimDuration::from_millis(4),
            DevicePreset::MemoryCopy => SimDuration::ZERO,
            DevicePreset::NodeLocal => SimDuration::from_micros(10),
        }
    }

    /// Build the corresponding device.
    pub fn build(&self) -> BandwidthDevice {
        BandwidthDevice::new(self.bandwidth(), self.latency())
    }
}

/// Full accounting for one transfer through a [`BandwidthDevice`]:
/// where the time went, split into FIFO queue wait vs actual service
/// (wire time + fixed latency). Feeds the flight recorder's
/// `DeviceTransfer` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the device started serving this transfer (≥ issue time).
    pub start: SimTime,
    /// When the last byte left the wire (excludes fixed latency).
    pub done_on_wire: SimTime,
    /// Completion instant observed by the caller (wire + latency).
    pub done: SimTime,
    /// Time spent queued behind earlier transfers (`start - now`).
    pub queue_wait: SimDuration,
    /// Time the transfer occupied the device plus fixed latency.
    pub service: SimDuration,
}

/// A FIFO bandwidth device.
#[derive(Debug, Clone)]
pub struct BandwidthDevice {
    bytes_per_sec: u64,
    latency: SimDuration,
    busy_until: SimTime,
    /// Total bytes pushed through the device (utilization accounting).
    bytes_total: u64,
    /// Total time the device spent busy.
    busy_total: SimDuration,
    /// Total time transfers waited behind earlier transfers.
    queue_wait_total: SimDuration,
    /// Number of transfers issued.
    transfers: u64,
}

impl BandwidthDevice {
    /// A device with the given peak bandwidth (bytes/s) and fixed
    /// per-operation latency.
    pub fn new(bytes_per_sec: u64, latency: SimDuration) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        Self {
            bytes_per_sec,
            latency,
            busy_until: SimTime::ZERO,
            bytes_total: 0,
            busy_total: SimDuration::ZERO,
            queue_wait_total: SimDuration::ZERO,
            transfers: 0,
        }
    }

    /// Peak bandwidth in bytes/second.
    pub fn bandwidth(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Fixed per-operation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Issue a transfer of `bytes` at time `now`; returns the completion
    /// instant. The device serializes transfers FIFO: if it is still
    /// busy, the transfer queues.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.transfer_detailed(now, bytes).done
    }

    /// [`BandwidthDevice::transfer`], returning the full queue-wait vs
    /// service breakdown for observability.
    pub fn transfer_detailed(&mut self, now: SimTime, bytes: u64) -> Transfer {
        let start = self.busy_until.max(now);
        let queue_wait = start.saturating_sub(now);
        let xfer = SimDuration::for_transfer(bytes, self.bytes_per_sec);
        let done_on_wire = start + xfer;
        self.busy_until = done_on_wire;
        self.bytes_total += bytes;
        self.busy_total += xfer;
        self.queue_wait_total += queue_wait;
        self.transfers += 1;
        Transfer {
            start,
            done_on_wire,
            done: done_on_wire + self.latency,
            queue_wait,
            service: xfer + self.latency,
        }
    }

    /// When the device next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes transferred.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Total time the device spent busy transferring.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Total time transfers spent queued behind earlier transfers.
    pub fn queue_wait_total(&self) -> SimDuration {
        self.queue_wait_total
    }

    /// Number of transfers issued through the device.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Mean utilization over `[0, now]`, in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_total.as_secs_f64() / now.as_secs_f64()).min(1.0)
    }
}

/// A device shared between rank threads (e.g. the per-node NIC serving
/// two Itanium-II processors on the paper's HP rx2600 nodes).
#[derive(Debug, Clone)]
pub struct SharedDevice(Arc<Mutex<BandwidthDevice>>);

impl SharedDevice {
    /// Wrap a device for shared use.
    pub fn new(device: BandwidthDevice) -> Self {
        Self(Arc::new(Mutex::new(device)))
    }

    /// Issue a transfer; see [`BandwidthDevice::transfer`].
    pub fn transfer(&self, now: SimTime, bytes: u64) -> SimTime {
        self.0.lock().transfer(now, bytes)
    }

    /// Issue a transfer with the full queue-wait vs service breakdown;
    /// see [`BandwidthDevice::transfer_detailed`].
    pub fn transfer_detailed(&self, now: SimTime, bytes: u64) -> Transfer {
        self.0.lock().transfer_detailed(now, bytes)
    }

    /// Snapshot of total bytes transferred.
    pub fn bytes_total(&self) -> u64 {
        self.0.lock().bytes_total()
    }

    /// Peak bandwidth in bytes/second.
    pub fn bandwidth(&self) -> u64 {
        self.0.lock().bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_numbers() {
        assert_eq!(DevicePreset::QsNet2.bandwidth(), 900_000_000);
        assert_eq!(DevicePreset::ScsiDisk.bandwidth(), 320_000_000);
    }

    #[test]
    fn idle_transfer_costs_bandwidth_plus_latency() {
        let mut d = BandwidthDevice::new(1_000_000, SimDuration::from_micros(10));
        // 1 MB at 1 MB/s = 1 s, plus 10 us latency.
        let done = d.transfer(SimTime::ZERO, 1_000_000);
        assert_eq!(done, SimTime::from_secs(1) + SimDuration::from_micros(10));
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut d = BandwidthDevice::new(1_000_000, SimDuration::ZERO);
        let a = d.transfer(SimTime::ZERO, 500_000); // done at 0.5s
        let b = d.transfer(SimTime::ZERO, 500_000); // queued: done at 1.0s
        assert_eq!(a, SimTime::from_secs_f64(0.5));
        assert_eq!(b, SimTime::from_secs(1));
    }

    #[test]
    fn late_issue_does_not_wait() {
        let mut d = BandwidthDevice::new(1_000_000, SimDuration::ZERO);
        d.transfer(SimTime::ZERO, 100_000); // busy until 0.1s
        let done = d.transfer(SimTime::from_secs(5), 100_000);
        assert_eq!(done, SimTime::from_secs_f64(5.1));
    }

    #[test]
    fn utilization_accounting() {
        let mut d = BandwidthDevice::new(1_000_000, SimDuration::ZERO);
        d.transfer(SimTime::ZERO, 500_000);
        assert!((d.utilization(SimTime::from_secs(1)) - 0.5).abs() < 1e-9);
        assert_eq!(d.bytes_total(), 500_000);
    }

    #[test]
    fn back_to_back_transfer_accrues_queue_wait() {
        let mut d = BandwidthDevice::new(1_000_000, SimDuration::from_micros(10));
        let a = d.transfer_detailed(SimTime::ZERO, 500_000);
        assert_eq!(a.queue_wait, SimDuration::ZERO);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.service, SimDuration::from_secs_f64(0.5) + SimDuration::from_micros(10));
        // Issued while the first transfer still owns the wire: waits
        // the remaining 0.5 s in queue, then gets full service.
        let b = d.transfer_detailed(SimTime::ZERO, 500_000);
        assert_eq!(b.queue_wait, SimDuration::from_secs_f64(0.5));
        assert_eq!(b.start, SimTime::from_secs_f64(0.5));
        assert_eq!(b.done_on_wire, SimTime::from_secs(1));
        assert_eq!(b.done, SimTime::from_secs(1) + SimDuration::from_micros(10));
        assert_eq!(d.queue_wait_total(), SimDuration::from_secs_f64(0.5));
        assert_eq!(d.transfers(), 2);
    }

    #[test]
    fn gapped_transfers_never_queue() {
        let mut d = BandwidthDevice::new(1_000_000, SimDuration::ZERO);
        let a = d.transfer_detailed(SimTime::ZERO, 100_000); // busy until 0.1 s
        let b = d.transfer_detailed(SimTime::from_secs(5), 100_000);
        assert_eq!(a.queue_wait, SimDuration::ZERO);
        assert_eq!(b.queue_wait, SimDuration::ZERO);
        assert_eq!(b.start, SimTime::from_secs(5));
        assert_eq!(d.queue_wait_total(), SimDuration::ZERO);
        // Busy time only counts wire occupancy, not the idle gap.
        assert_eq!(d.busy_total(), SimDuration::from_secs_f64(0.2));
    }

    #[test]
    fn transfer_and_detailed_agree() {
        let mut a = BandwidthDevice::new(2_000_000, SimDuration::from_micros(3));
        let mut b = a.clone();
        for (t, bytes) in [(0u64, 100_000u64), (0, 50_000), (7, 250_000)] {
            let done = a.transfer(SimTime::from_secs(t), bytes);
            let det = b.transfer_detailed(SimTime::from_secs(t), bytes);
            assert_eq!(done, det.done);
        }
        assert_eq!(a.bytes_total(), b.bytes_total());
        assert_eq!(a.queue_wait_total(), b.queue_wait_total());
    }

    #[test]
    fn shared_device_serializes() {
        let d = SharedDevice::new(BandwidthDevice::new(1_000_000, SimDuration::ZERO));
        let a = d.transfer(SimTime::ZERO, 500_000);
        let b = d.transfer(SimTime::ZERO, 500_000);
        assert!(b > a);
        assert_eq!(d.bytes_total(), 1_000_000);
    }
}
