//! Bandwidth/latency device models.
//!
//! §3 of the paper identifies two potential bottlenecks for saving
//! checkpoint data: the interconnection network and the storage device.
//! Its reference numbers are the Quadrics QsNet II NIC at **900 MB/s**
//! peak and a SCSI (Seagate Cheetah) disk at **320 MB/s** peak, and the
//! feasibility argument compares required incremental bandwidth against
//! them. This module models such devices as a (latency, bandwidth) pair
//! with FIFO queuing: a transfer issued at `t` starts when the device is
//! free, occupies it for `bytes / bandwidth`, and completes after an
//! additional fixed latency.

use parking_lot::Mutex;
use std::sync::Arc;

use crate::clock::{SimDuration, SimTime};

/// Named device presets with the paper's reference numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevicePreset {
    /// Quadrics QsNet II: 900 MB/s peak, ~2 µs MPI-level latency (§3).
    QsNet2,
    /// Quadrics QsNet (Elan3), the cluster's installed network:
    /// ~340 MB/s per rail, ~5 µs latency.
    QsNet,
    /// SCSI disk (Seagate Cheetah-class): 320 MB/s peak, ~4 ms access.
    ScsiDisk,
    /// 2004-era local memory copy path (~2 GB/s), used for the bounce
    /// buffer copy cost.
    MemoryCopy,
    /// Node-local checkpoint cache (RAM-disk / local scratch class,
    /// ~1 GB/s, ~10 µs): the fast first tier of a multilevel scheme,
    /// as in SCR's node-local cache.
    NodeLocal,
}

impl DevicePreset {
    /// Bandwidth in bytes/second.
    pub fn bandwidth(&self) -> u64 {
        match self {
            DevicePreset::QsNet2 => 900_000_000,
            DevicePreset::QsNet => 340_000_000,
            DevicePreset::ScsiDisk => 320_000_000,
            DevicePreset::MemoryCopy => 2_000_000_000,
            DevicePreset::NodeLocal => 1_000_000_000,
        }
    }

    /// Fixed per-operation latency.
    pub fn latency(&self) -> SimDuration {
        match self {
            DevicePreset::QsNet2 => SimDuration::from_micros(2),
            DevicePreset::QsNet => SimDuration::from_micros(5),
            DevicePreset::ScsiDisk => SimDuration::from_millis(4),
            DevicePreset::MemoryCopy => SimDuration::ZERO,
            DevicePreset::NodeLocal => SimDuration::from_micros(10),
        }
    }

    /// Build the corresponding device.
    pub fn build(&self) -> BandwidthDevice {
        BandwidthDevice::new(self.bandwidth(), self.latency())
    }
}

/// A FIFO bandwidth device.
#[derive(Debug, Clone)]
pub struct BandwidthDevice {
    bytes_per_sec: u64,
    latency: SimDuration,
    busy_until: SimTime,
    /// Total bytes pushed through the device (utilization accounting).
    bytes_total: u64,
    /// Total time the device spent busy.
    busy_total: SimDuration,
}

impl BandwidthDevice {
    /// A device with the given peak bandwidth (bytes/s) and fixed
    /// per-operation latency.
    pub fn new(bytes_per_sec: u64, latency: SimDuration) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        Self {
            bytes_per_sec,
            latency,
            busy_until: SimTime::ZERO,
            bytes_total: 0,
            busy_total: SimDuration::ZERO,
        }
    }

    /// Peak bandwidth in bytes/second.
    pub fn bandwidth(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Fixed per-operation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Issue a transfer of `bytes` at time `now`; returns the completion
    /// instant. The device serializes transfers FIFO: if it is still
    /// busy, the transfer queues.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let xfer = SimDuration::for_transfer(bytes, self.bytes_per_sec);
        let done_on_wire = start + xfer;
        self.busy_until = done_on_wire;
        self.bytes_total += bytes;
        self.busy_total += xfer;
        done_on_wire + self.latency
    }

    /// When the device next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes transferred.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Total time the device spent busy transferring.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Mean utilization over `[0, now]`, in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_total.as_secs_f64() / now.as_secs_f64()).min(1.0)
    }
}

/// A device shared between rank threads (e.g. the per-node NIC serving
/// two Itanium-II processors on the paper's HP rx2600 nodes).
#[derive(Debug, Clone)]
pub struct SharedDevice(Arc<Mutex<BandwidthDevice>>);

impl SharedDevice {
    /// Wrap a device for shared use.
    pub fn new(device: BandwidthDevice) -> Self {
        Self(Arc::new(Mutex::new(device)))
    }

    /// Issue a transfer; see [`BandwidthDevice::transfer`].
    pub fn transfer(&self, now: SimTime, bytes: u64) -> SimTime {
        self.0.lock().transfer(now, bytes)
    }

    /// Snapshot of total bytes transferred.
    pub fn bytes_total(&self) -> u64 {
        self.0.lock().bytes_total()
    }

    /// Peak bandwidth in bytes/second.
    pub fn bandwidth(&self) -> u64 {
        self.0.lock().bandwidth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_numbers() {
        assert_eq!(DevicePreset::QsNet2.bandwidth(), 900_000_000);
        assert_eq!(DevicePreset::ScsiDisk.bandwidth(), 320_000_000);
    }

    #[test]
    fn idle_transfer_costs_bandwidth_plus_latency() {
        let mut d = BandwidthDevice::new(1_000_000, SimDuration::from_micros(10));
        // 1 MB at 1 MB/s = 1 s, plus 10 us latency.
        let done = d.transfer(SimTime::ZERO, 1_000_000);
        assert_eq!(done, SimTime::from_secs(1) + SimDuration::from_micros(10));
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut d = BandwidthDevice::new(1_000_000, SimDuration::ZERO);
        let a = d.transfer(SimTime::ZERO, 500_000); // done at 0.5s
        let b = d.transfer(SimTime::ZERO, 500_000); // queued: done at 1.0s
        assert_eq!(a, SimTime::from_secs_f64(0.5));
        assert_eq!(b, SimTime::from_secs(1));
    }

    #[test]
    fn late_issue_does_not_wait() {
        let mut d = BandwidthDevice::new(1_000_000, SimDuration::ZERO);
        d.transfer(SimTime::ZERO, 100_000); // busy until 0.1s
        let done = d.transfer(SimTime::from_secs(5), 100_000);
        assert_eq!(done, SimTime::from_secs_f64(5.1));
    }

    #[test]
    fn utilization_accounting() {
        let mut d = BandwidthDevice::new(1_000_000, SimDuration::ZERO);
        d.transfer(SimTime::ZERO, 500_000);
        assert!((d.utilization(SimTime::from_secs(1)) - 0.5).abs() < 1e-9);
        assert_eq!(d.bytes_total(), 500_000);
    }

    #[test]
    fn shared_device_serializes() {
        let d = SharedDevice::new(BandwidthDevice::new(1_000_000, SimDuration::ZERO));
        let a = d.transfer(SimTime::ZERO, 500_000);
        let b = d.transfer(SimTime::ZERO, 500_000);
        assert!(b > a);
        assert_eq!(d.bytes_total(), 1_000_000);
    }
}
