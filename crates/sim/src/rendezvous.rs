//! Reusable N-party virtual-time rendezvous.
//!
//! Ranks execute on real threads but carry virtual clocks. A collective
//! operation (barrier, allreduce, coordinated checkpoint) is a
//! rendezvous: every participant contributes its local virtual time and
//! an optional `u64` value; when the last one arrives, all of them
//! observe the **maximum** entry time (the instant the collective can
//! logically complete) and the combined value. The result is
//! independent of OS scheduling, which is what makes the threaded
//! simulation deterministic.

use parking_lot::{Condvar, Mutex};

use crate::clock::SimTime;

/// How the optional per-participant values are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Maximum of the contributed values.
    Max,
    /// Minimum of the contributed values.
    Min,
    /// Wrapping sum of the contributed values.
    Sum,
    /// Bitwise OR (useful for vote flags).
    Or,
    /// Bitwise AND (useful for unanimous votes).
    And,
}

impl Combine {
    /// The identity element of this combiner (the accumulator seed).
    /// Public so the event-driven engine can fold collective rounds
    /// with exactly the semantics of a threaded rendezvous.
    pub fn identity(&self) -> u64 {
        match self {
            Combine::Max => 0,
            Combine::Min => u64::MAX,
            Combine::Sum => 0,
            Combine::Or => 0,
            Combine::And => u64::MAX,
        }
    }

    /// Combine two values. All variants are commutative and
    /// associative, so fold order never affects the result.
    pub fn apply(&self, a: u64, b: u64) -> u64 {
        match self {
            Combine::Max => a.max(b),
            Combine::Min => a.min(b),
            Combine::Sum => a.wrapping_add(b),
            Combine::Or => a | b,
            Combine::And => a & b,
        }
    }
}

struct State {
    generation: u64,
    arrived: usize,
    max_time: SimTime,
    value: u64,
    /// Result latched for the generation that just completed.
    done_time: SimTime,
    done_value: u64,
}

/// A reusable rendezvous for a fixed participant count.
pub struct Rendezvous {
    parties: usize,
    state: Mutex<State>,
    cv: Condvar,
}

/// Outcome of a rendezvous round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RendezvousResult {
    /// Maximum of the participants' entry times.
    pub time: SimTime,
    /// Combined value.
    pub value: u64,
}

impl Rendezvous {
    /// A rendezvous for `parties` participants.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "rendezvous needs at least one party");
        Self {
            parties,
            state: Mutex::new(State {
                generation: 0,
                arrived: 0,
                max_time: SimTime::ZERO,
                value: 0,
                done_time: SimTime::ZERO,
                done_value: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Enter the rendezvous at local virtual time `time`, contributing
    /// `value` under `combine`. Blocks (on the real thread) until all
    /// parties of this round have entered; returns the round result.
    pub fn enter(&self, time: SimTime, value: u64, combine: Combine) -> RendezvousResult {
        let mut st = self.state.lock();
        let my_gen = st.generation;
        if st.arrived == 0 {
            st.max_time = time;
            st.value = combine.identity();
        } else {
            st.max_time = st.max_time.max(time);
        }
        st.value = combine.apply(st.value, value);
        st.arrived += 1;
        if st.arrived == self.parties {
            // Last arrival closes the round and wakes everyone.
            st.done_time = st.max_time;
            st.done_value = st.value;
            st.generation += 1;
            st.arrived = 0;
            self.cv.notify_all();
            return RendezvousResult { time: st.done_time, value: st.done_value };
        }
        while st.generation == my_gen {
            self.cv.wait(&mut st);
        }
        RendezvousResult { time: st.done_time, value: st.done_value }
    }

    /// Convenience: a pure barrier (no value exchange).
    pub fn barrier(&self, time: SimTime) -> SimTime {
        self.enter(time, 0, Combine::Max).time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn run_parties(
        parties: usize,
        times: Vec<u64>,
        values: Vec<u64>,
        combine: Combine,
    ) -> Vec<RendezvousResult> {
        let rdv = Arc::new(Rendezvous::new(parties));
        let mut handles = Vec::new();
        for i in 0..parties {
            let rdv = rdv.clone();
            let t = times[i];
            let v = values[i];
            handles.push(std::thread::spawn(move || rdv.enter(SimTime::from_secs(t), v, combine)));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn all_observe_max_time() {
        let res = run_parties(4, vec![1, 5, 3, 2], vec![0; 4], Combine::Max);
        for r in res {
            assert_eq!(r.time, SimTime::from_secs(5));
        }
    }

    #[test]
    fn sum_combine() {
        let res = run_parties(3, vec![0, 0, 0], vec![1, 2, 3], Combine::Sum);
        for r in res {
            assert_eq!(r.value, 6);
        }
    }

    #[test]
    fn min_and_bitops() {
        let res = run_parties(3, vec![0, 0, 0], vec![5, 9, 7], Combine::Min);
        assert!(res.iter().all(|r| r.value == 5));
        let res = run_parties(2, vec![0, 0], vec![0b01, 0b10], Combine::Or);
        assert!(res.iter().all(|r| r.value == 0b11));
        let res = run_parties(2, vec![0, 0], vec![0b11, 0b10], Combine::And);
        assert!(res.iter().all(|r| r.value == 0b10));
    }

    #[test]
    fn reusable_across_rounds() {
        let rdv = Arc::new(Rendezvous::new(2));
        let r2 = rdv.clone();
        let h = std::thread::spawn(move || {
            let a = r2.enter(SimTime::from_secs(1), 10, Combine::Sum);
            let b = r2.enter(SimTime::from_secs(4), 1, Combine::Sum);
            (a, b)
        });
        let a = rdv.enter(SimTime::from_secs(2), 20, Combine::Sum);
        let b = rdv.enter(SimTime::from_secs(3), 2, Combine::Sum);
        let (a2, b2) = h.join().unwrap();
        assert_eq!(a, a2);
        assert_eq!(b, b2);
        assert_eq!(a.time, SimTime::from_secs(2));
        assert_eq!(a.value, 30);
        assert_eq!(b.time, SimTime::from_secs(4));
        assert_eq!(b.value, 3);
    }

    #[test]
    fn single_party_rendezvous_is_identity() {
        let rdv = Rendezvous::new(1);
        let r = rdv.enter(SimTime::from_secs(9), 42, Combine::Max);
        assert_eq!(r.time, SimTime::from_secs(9));
        assert_eq!(r.value, 42);
    }

    #[test]
    fn barrier_convenience() {
        let rdv = Arc::new(Rendezvous::new(2));
        let r2 = rdv.clone();
        let h = std::thread::spawn(move || r2.barrier(SimTime::from_secs(7)));
        let t = rdv.barrier(SimTime::from_secs(3));
        assert_eq!(t, SimTime::from_secs(7));
        assert_eq!(h.join().unwrap(), SimTime::from_secs(7));
    }
}
