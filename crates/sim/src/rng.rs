//! SplitMix64: a tiny deterministic PRNG.
//!
//! Workload models need reproducible pseudo-randomness (e.g. Sage's
//! allocation churn, randomized access patterns in tests). SplitMix64
//! passes BigCrush, needs eight bytes of state, and — unlike thread-rng
//! style generators — makes every simulated run a pure function of its
//! seed, which the determinism of the whole reproduction rests on.

/// SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent stream for a rank: mixes the rank id into
    /// the seed so per-rank sequences are uncorrelated but reproducible.
    pub fn for_rank(seed: u64, rank: usize) -> Self {
        let mut base = Self::new(seed ^ (rank as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        // Burn a few outputs to decorrelate nearby rank seeds.
        base.next_u64();
        base.next_u64();
        base
    }

    /// The raw generator state (for checkpointing model state).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Overwrite the raw generator state (restore from a checkpoint).
    pub fn set_state(&mut self, state: u64) {
        self.state = state;
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be positive.
    /// Uses the widening-multiply technique (Lemire) to avoid modulo
    /// bias without a division on the hot path.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 0 (from the canonical SplitMix64).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut g = SplitMix64::new(42);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = g.next_below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut g = SplitMix64::new(9);
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn rank_streams_are_distinct() {
        let mut r0 = SplitMix64::for_rank(123, 0);
        let mut r1 = SplitMix64::for_rank(123, 1);
        assert_ne!(r0.next_u64(), r1.next_u64());
    }

    #[test]
    fn chance_tracks_probability() {
        let mut g = SplitMix64::new(5);
        let hits = (0..100_000).filter(|_| g.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
