//! Hierarchical fan-in reduction.
//!
//! Petascale checkpoint systems aggregate per-rank reports through
//! fan-in trees rather than flat all-to-root collection; [`tree_reduce`]
//! is that shape as a pure in-memory combinator. Items are merged in
//! contiguous groups of `arity` (left fold within a group), then the
//! group results are merged the same way, level by level, until one
//! remains.
//!
//! **Determinism contract:** for an associative `merge`, the result is
//! byte-identical to a flat left fold over the items, at any arity.
//! Aggregates flowing through this function must therefore stick to
//! associative integer arithmetic (sums, saturating/wrapping adds,
//! mins, maxes, ORs); floating-point accumulation is *not* associative
//! and belongs at render time, after the reduction. The property suite
//! (`tests/sched_props.rs`) pins tree-vs-flat equality across arities.

/// Reduce `items` through a fan-in tree of the given `arity`
/// (minimum 2). Returns `None` for an empty input.
///
/// ```
/// use ickpt_sim::reduce::tree_reduce;
///
/// let sum = tree_reduce((1u64..=100).collect(), 8, |a, b| *a += b);
/// assert_eq!(sum, Some(5050));
/// ```
pub fn tree_reduce<T>(
    mut items: Vec<T>,
    arity: usize,
    mut merge: impl FnMut(&mut T, T),
) -> Option<T> {
    let arity = arity.max(2);
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(arity));
        let mut it = items.into_iter();
        while let Some(mut acc) = it.next() {
            for _ in 1..arity {
                match it.next() {
                    Some(x) => merge(&mut acc, x),
                    None => break,
                }
            }
            next.push(acc);
        }
        items = next;
    }
    items.pop()
}

/// The flat reference: a plain left fold. Kept public so property
/// tests (and callers wanting the simplest possible shape) can compare
/// against [`tree_reduce`].
pub fn flat_reduce<T>(items: Vec<T>, mut merge: impl FnMut(&mut T, T)) -> Option<T> {
    let mut it = items.into_iter();
    let mut acc = it.next()?;
    for x in it {
        merge(&mut acc, x);
    }
    Some(acc)
}

/// Fan-in group assignment: the group index each of `n` items belongs
/// to at the given `arity` (contiguous groups, as [`tree_reduce`]'s
/// first level forms them). Exposed so topology-aware consumers (the
/// drain queue's tree mode) charge traffic along the same tree.
pub fn fanin_group(index: usize, arity: usize) -> usize {
    index / arity.max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert_eq!(tree_reduce(Vec::<u64>::new(), 4, |a, b| *a += b), None);
        assert_eq!(tree_reduce(vec![7u64], 4, |a, b| *a += b), Some(7));
    }

    #[test]
    fn matches_flat_for_associative_merges() {
        let items: Vec<u64> = (0u64..1000).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let flat = flat_reduce(items.clone(), |a, b| *a = a.wrapping_add(b));
        for arity in [2, 3, 7, 32, 1000, 5000] {
            let tree = tree_reduce(items.clone(), arity, |a, b| *a = a.wrapping_add(b));
            assert_eq!(tree, flat, "arity {arity}");
        }
        let flat_max = flat_reduce(items.clone(), |a, b| *a = (*a).max(b));
        for arity in [2, 32] {
            assert_eq!(tree_reduce(items.clone(), arity, |a, b| *a = (*a).max(b)), flat_max);
        }
    }

    #[test]
    fn arity_below_two_is_clamped() {
        let sum = tree_reduce(vec![1u64, 2, 3], 0, |a, b| *a += b);
        assert_eq!(sum, Some(6));
    }

    #[test]
    fn fanin_groups_are_contiguous() {
        assert_eq!(fanin_group(0, 32), 0);
        assert_eq!(fanin_group(31, 32), 0);
        assert_eq!(fanin_group(32, 32), 1);
        assert_eq!(fanin_group(95, 32), 2);
    }
}
