//! # ickpt-sim — deterministic virtual-time cluster substrate
//!
//! The paper measured real wall-clock seconds on a 64-processor
//! Itanium-II cluster. We replace the cluster with *virtual time*: every
//! rank carries a local logical clock, costs (compute phases, message
//! transfers, collective operations) advance it analytically, and
//! synchronization points exchange clock values so the global ordering
//! is exactly what a real bulk-synchronous run would produce — but a
//! simulated 500 s Sage run finishes in seconds and is bit-for-bit
//! reproducible.
//!
//! Pieces:
//!
//! * [`clock`] — `SimTime` / `SimDuration`, nanosecond-resolution fixed
//!   point.
//! * [`device`] — bandwidth/latency device models (the QsNet NIC at
//!   900 MB/s and the SCSI disk at 320 MB/s from §3 of the paper are
//!   provided as presets) with busy-until queuing.
//! * [`rng`] — SplitMix64: tiny, seedable, no external dependency, used
//!   wherever the workload models need reproducible pseudo-randomness.
//! * [`rendezvous`] — a reusable N-party rendezvous that computes the
//!   max of the participants' local clocks; the building block for
//!   barriers, reductions and coordinated checkpoints.
//! * [`sched`] — a deterministic calendar-queue event wheel: amortized
//!   O(1) insert/pop over bucketed `SimTime` with FIFO tie-break, the
//!   backbone of the event-driven cluster engine.
//! * [`reduce`] — hierarchical fan-in reduction (`tree_reduce`),
//!   byte-identical to a flat fold for associative integer merges.
//! * [`gate`] — a counting semaphore capping how many rank threads of
//!   the legacy thread-per-rank paths execute concurrently.
//! * [`stripe`] — a striped multi-device array: round-robin stripe
//!   chunks over M FIFO devices, the storage shape of a shared
//!   checkpoint service.

pub mod clock;
pub mod device;
pub mod gate;
pub mod reduce;
pub mod rendezvous;
pub mod rng;
pub mod sched;
pub mod stripe;

pub use clock::{SimDuration, SimTime};
pub use device::{BandwidthDevice, DevicePreset, SharedDevice, Transfer};
pub use gate::WorkerGate;
pub use reduce::{flat_reduce, tree_reduce};
pub use rendezvous::Rendezvous;
pub use rng::SplitMix64;
pub use sched::EventWheel;
pub use stripe::{StripeTransfer, StripedArray};
