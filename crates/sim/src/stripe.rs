//! A striped multi-device storage array.
//!
//! stdchk-style checkpoint services scale aggregate write throughput
//! by striping each stream across several storage nodes and
//! pipelining the per-stripe transfers. This module models that
//! shape on top of [`BandwidthDevice`]: an array of `M` independent
//! FIFO devices, a fixed stripe-chunk size, and a round-robin cursor
//! that assigns consecutive chunks to consecutive devices. A chunk
//! only ever occupies one device, so `M` devices give up to `M`-way
//! write parallelism while each device keeps the FIFO queuing (and
//! therefore the determinism) of the single-device model.
//!
//! Two charging styles:
//!
//! * [`StripedArray::write`] — charge a whole logical write at once
//!   (the drain queue's batched handoff); completion is the latest
//!   chunk completion.
//! * [`StripedArray::write_chunk`] — charge one stripe chunk and
//!   return which device served it (the service scheduler's pipelined
//!   path, where chunk completions are individual events).

use crate::clock::{SimDuration, SimTime};
use crate::device::{BandwidthDevice, Transfer};

/// The whole-write breakdown returned by [`StripedArray::write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeTransfer {
    /// Earliest instant any chunk started service.
    pub start: SimTime,
    /// Latest chunk completion — when the logical write is durable.
    pub done: SimTime,
    /// Stripe chunks charged.
    pub chunks: u64,
    /// Summed queue wait across chunks.
    pub queue_wait: SimDuration,
    /// Summed service time across chunks.
    pub service: SimDuration,
}

/// See the module docs.
pub struct StripedArray {
    devices: Vec<BandwidthDevice>,
    stripe_chunk: u64,
    cursor: usize,
}

impl StripedArray {
    /// An array of `devices` with `stripe_chunk`-byte striping.
    /// Panics on an empty device list or a zero chunk size.
    pub fn new(devices: Vec<BandwidthDevice>, stripe_chunk: u64) -> Self {
        assert!(!devices.is_empty(), "striped array needs at least one device");
        assert!(stripe_chunk > 0, "stripe chunk must be positive");
        Self { devices, stripe_chunk, cursor: 0 }
    }

    /// `width` identical devices of `bytes_per_sec` / `latency`.
    pub fn homogeneous(
        width: usize,
        bytes_per_sec: u64,
        latency: SimDuration,
        stripe_chunk: u64,
    ) -> Self {
        Self::new(
            (0..width.max(1)).map(|_| BandwidthDevice::new(bytes_per_sec, latency)).collect(),
            stripe_chunk,
        )
    }

    /// Number of devices in the stripe set.
    pub fn width(&self) -> usize {
        self.devices.len()
    }

    /// Configured stripe-chunk size in bytes.
    pub fn stripe_chunk(&self) -> u64 {
        self.stripe_chunk
    }

    /// Split `bytes` into stripe-chunk units (the last one ragged).
    /// Zero-byte writes still occupy one (empty) chunk so latency is
    /// charged like the single-device model does.
    pub fn chunk_sizes(&self, bytes: u64) -> impl Iterator<Item = u64> + '_ {
        let full = bytes / self.stripe_chunk;
        let rem = bytes % self.stripe_chunk;
        let tail = if rem > 0 || bytes == 0 { 1 } else { 0 };
        (0..full + tail).map(move |i| if i < full { self.stripe_chunk } else { rem })
    }

    /// Charge one stripe chunk on the next device in round-robin
    /// order; returns the serving device's index and the transfer.
    pub fn write_chunk(&mut self, now: SimTime, bytes: u64) -> (usize, Transfer) {
        let idx = self.cursor;
        self.cursor = (self.cursor + 1) % self.devices.len();
        (idx, self.devices[idx].transfer_detailed(now, bytes))
    }

    /// Charge a whole logical write: stripe it into chunks, issue all
    /// of them at `now` round-robin, and report the combined
    /// breakdown. The write is durable at `done` (the slowest chunk).
    pub fn write(&mut self, now: SimTime, bytes: u64) -> StripeTransfer {
        let sizes: Vec<u64> = self.chunk_sizes(bytes).collect();
        let mut out = StripeTransfer {
            start: SimTime(u64::MAX),
            done: now,
            chunks: 0,
            queue_wait: SimDuration::ZERO,
            service: SimDuration::ZERO,
        };
        for sz in sizes {
            let (_, t) = self.write_chunk(now, sz);
            out.start = out.start.min(t.start);
            out.done = out.done.max(t.done);
            out.chunks += 1;
            out.queue_wait = SimDuration(out.queue_wait.0 + t.queue_wait.0);
            out.service = SimDuration(out.service.0 + t.service.0);
        }
        if out.start == SimTime(u64::MAX) {
            out.start = now;
        }
        out
    }

    /// Per-device cumulative payload bytes, device order.
    pub fn device_bytes(&self) -> Vec<u64> {
        self.devices.iter().map(|d| d.bytes_total()).collect()
    }

    /// Total payload bytes across all devices.
    pub fn bytes_total(&self) -> u64 {
        self.devices.iter().map(|d| d.bytes_total()).sum()
    }

    /// Total transfers serviced across all devices.
    pub fn transfers(&self) -> u64 {
        self.devices.iter().map(|d| d.transfers()).sum()
    }

    /// Total busy (service) time summed over devices.
    pub fn busy_total(&self) -> SimDuration {
        SimDuration(self.devices.iter().map(|d| d.busy_total().0).sum())
    }

    /// Latest instant any device is busy until.
    pub fn busy_until(&self) -> SimTime {
        self.devices.iter().map(|d| d.busy_until()).max().unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(width: usize) -> StripedArray {
        // 1 MB/s devices, zero latency, 1 MB stripe chunks.
        StripedArray::homogeneous(width, 1_000_000, SimDuration::ZERO, 1_000_000)
    }

    #[test]
    fn striping_scales_aggregate_throughput() {
        // 4 MB onto one device: 4 s. Onto four devices: 1 s.
        let mut one = array(1);
        let mut four = array(4);
        assert_eq!(one.write(SimTime::ZERO, 4_000_000).done, SimTime::from_secs(4));
        let t = four.write(SimTime::ZERO, 4_000_000);
        assert_eq!(t.done, SimTime::from_secs(1));
        assert_eq!(t.chunks, 4);
        assert_eq!(four.device_bytes(), vec![1_000_000; 4]);
    }

    #[test]
    fn ragged_tail_and_cursor_rotation() {
        let mut a = array(2);
        // 2.5 MB = chunks of 1, 1, 0.5 MB on devices 0, 1, 0.
        let t = a.write(SimTime::ZERO, 2_500_000);
        assert_eq!(t.chunks, 3);
        assert_eq!(a.device_bytes(), vec![1_500_000, 1_000_000]);
        // The cursor carried on to device 1 for the next write.
        let (idx, _) = a.write_chunk(SimTime::ZERO, 1);
        assert_eq!(idx, 1);
    }

    #[test]
    fn single_device_matches_bandwidth_device() {
        let mut a = StripedArray::homogeneous(1, 320_000_000, SimDuration::from_millis(4), 1 << 22);
        let mut d = BandwidthDevice::new(320_000_000, SimDuration::from_millis(4));
        // A write that fits one stripe chunk is charged identically.
        let t = a.write(SimTime::from_secs(1), 1 << 20);
        let r = d.transfer_detailed(SimTime::from_secs(1), 1 << 20);
        assert_eq!(t.done, r.done);
        assert_eq!(t.service, r.service);
    }

    #[test]
    fn zero_byte_write_still_costs_latency() {
        let mut a = StripedArray::homogeneous(2, 1_000_000, SimDuration::from_millis(1), 1_000);
        let t = a.write(SimTime::ZERO, 0);
        assert_eq!(t.chunks, 1);
        assert_eq!(t.done, SimTime(1_000_000));
    }

    #[test]
    fn writes_are_deterministic() {
        let run = || {
            let mut a = array(3);
            let mut dones = Vec::new();
            for i in 0..20u64 {
                dones.push(a.write(SimTime(i * 7), 300_000 + i * 13).done);
            }
            (dones, a.device_bytes())
        };
        assert_eq!(run(), run());
    }
}
