//! Virtual time: nanosecond fixed-point instants and durations.
//!
//! All experiment-facing quantities in the paper are expressed in
//! seconds (timeslices of 1–20 s, iteration periods of 0.16–145 s), but
//! message latencies are microseconds, so we keep nanosecond resolution
//! in a `u64`: that covers ~584 years of virtual time, far beyond any
//! run.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from a fractional second count (clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9) as u64)
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference between two instants.
    pub fn saturating_sub(&self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Index of the timeslice window containing this instant, for a
    /// given timeslice length.
    pub fn window_index(&self, timeslice: SimDuration) -> u64 {
        assert!(timeslice.0 > 0, "timeslice must be positive");
        self.0 / timeslice.0
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from fractional seconds (clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9) as u64)
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether the duration is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// Duration needed to move `bytes` bytes at `bytes_per_sec`.
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        // Round up: a transfer is not done until the last byte lands.
        SimDuration((bytes as u128 * 1_000_000_000 / bytes_per_sec as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        assert!(self.0 >= rhs.0, "negative duration: {self:?} - {rhs:?}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000_000);
        assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_micros(3).0, 3_000);
        assert!((SimTime::from_secs_f64(0.25).as_secs_f64() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn transfer_duration_rounds_sanely() {
        // 900 MB/s NIC moving 9 MB takes 10 ms.
        let d = SimDuration::for_transfer(9_000_000, 900_000_000);
        assert_eq!(d, SimDuration::from_millis(10));
        // Zero bytes take zero time.
        assert_eq!(SimDuration::for_transfer(0, 1), SimDuration::ZERO);
    }

    #[test]
    fn window_index() {
        let ts = SimDuration::from_secs(1);
        assert_eq!(SimTime::from_secs_f64(0.5).window_index(ts), 0);
        assert_eq!(SimTime::from_secs(1).window_index(ts), 1);
        assert_eq!(SimTime::from_secs_f64(19.99).window_index(ts), 19);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration(500).to_string(), "500ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.0us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.0ms");
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn saturating_sub() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_secs(2));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3].iter().map(|&s| SimDuration::from_secs(s)).sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }
}
