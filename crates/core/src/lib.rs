//! # ickpt-core — incremental checkpointing
//!
//! The primary contribution of Sancho et al. (IPDPS 2004) reproduced as
//! a library: page-granularity write tracking at the "operating system"
//! abstraction level of the paper's Table 1, the IWS/IB metrics of §6.1,
//! checkpoint capture and rollback recovery, coordinated checkpoint
//! planning that exploits the bulk-synchronous application structure of
//! §6.2, and the feasibility analysis of §3/§6.3.
//!
//! * [`tracker`] — [`tracker::WriteTracker`]: the software MMU. Every
//!   simulated write goes through the same protect → fault → record →
//!   unprotect cycle as the paper's `mprotect`/`SIGSEGV` instrumentation
//!   (see `ickpt-native` for the real-OS twin), and an alarm at every
//!   *checkpoint timeslice* records the Incremental Working Set and
//!   re-protects all pages.
//! * [`metrics`] — Incremental Working Set (IWS) and Incremental
//!   Bandwidth (IB) statistics exactly as defined in §6.1.
//! * [`tracked_space`] — couples an address space to a tracker so
//!   mapping changes feed memory exclusion (§4.2).
//! * [`checkpoint`] / [`restore`] — full and incremental capture into
//!   `ickpt-storage` chunks, and chain-walking rollback recovery.
//! * [`coordinator`] — checkpoint planning: generation/lineage
//!   management and the vote flags exchanged at iteration boundaries.
//! * [`policy`] — run-time detection of the applications' periodic
//!   behaviour (processing bursts, main-iteration period) from the IWS
//!   series, as §6.2 argues is possible.
//! * [`feasibility`] — required-vs-available bandwidth verdicts against
//!   the paper's 900 MB/s network and 320 MB/s disk reference points.
//! * [`interval`] — Young/Daly checkpoint-interval optimization and
//!   machine-efficiency modeling, turning the measured bandwidth
//!   requirements into deployment guidance for the failure rates the
//!   paper's introduction projects (BlueGene/L failing every few
//!   hours).

pub mod checkpoint;
pub mod coordinator;
pub mod error;
pub mod feasibility;
pub mod interval;
pub mod metrics;
pub mod policy;
pub mod restore;
pub mod trace;
pub mod tracked_space;
pub mod tracker;

pub use checkpoint::{capture_full, capture_incremental};
pub use coordinator::{CheckpointPlanner, CheckpointPolicy, PlannedCheckpoint, VoteFlags};
pub use error::CoreError;
pub use feasibility::{FeasibilityReport, FeasibilityVerdict};
pub use interval::IntervalModel;
pub use metrics::{IbStats, IwsSample};
pub use policy::{detect_bursts, detect_period, BurstReport};
pub use restore::{
    latest_committed_generation, restore_rank, restore_rank_sequential, restore_rank_with,
    RestoreConfig, RestoreReport,
};
pub use trace::{RankTrace, TraceSlice};
pub use tracked_space::{ContentWrite, TrackedSpace};
pub use tracker::{TrackerConfig, WriteTracker};
