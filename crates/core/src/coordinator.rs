//! Coordinated checkpoint planning.
//!
//! §6.2 of the paper: the applications are bulk-synchronous, with
//! processing bursts separated by communication bursts, and "there are
//! moments where it is more convenient to take a checkpoint, for
//! example at the beginning or at the end of an iteration". The
//! coordination scheme built on that observation:
//!
//! 1. Ranks reach an iteration boundary and enter the per-iteration
//!    allreduce that bulk-synchronous codes already perform.
//! 2. Each rank contributes [`VoteFlags`]: *checkpoint due* (its local
//!    clock passed the checkpoint interval), *failure imminent*,
//!    *stop requested*. The OR across ranks is the global decision, so
//!    all ranks act identically — a coordinated checkpoint needs no
//!    extra message rounds beyond the collective the application was
//!    going to do anyway.
//! 3. If checkpointing: every rank captures its chunk (full or
//!    incremental per the [`CheckpointPolicy`] lineage), writes it to
//!    stable storage, and a second rendezvous commits the manifest —
//!    the classic two-phase structure that makes the generation
//!    atomic.
//!
//! [`CheckpointPlanner`] is the per-rank deterministic state machine
//! for steps 2–3; because every rank runs the same planner on the same
//! global decisions, lineage never diverges across ranks.

use ickpt_sim::{SimDuration, SimTime};
use ickpt_storage::ChunkKind;

/// Vote bits exchanged in the iteration-boundary allreduce (combined
/// with bitwise OR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VoteFlags(pub u64);

impl VoteFlags {
    /// A checkpoint is due.
    pub const CHECKPOINT: u64 = 1 << 0;
    /// This rank is about to fail (failure injection / health monitor).
    pub const FAIL: u64 = 1 << 1;
    /// The run reached its configured end.
    pub const STOP: u64 = 1 << 2;

    /// No votes.
    pub fn none() -> Self {
        VoteFlags(0)
    }

    /// Set a flag.
    pub fn with(mut self, flag: u64) -> Self {
        self.0 |= flag;
        self
    }

    /// Whether `flag` is set.
    pub fn has(&self, flag: u64) -> bool {
        self.0 & flag != 0
    }
}

/// When and how to checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy {
    /// Desired interval between checkpoints (virtual time). The actual
    /// spacing quantizes to iteration boundaries — the paper's
    /// "convenient moments".
    pub interval: SimDuration,
    /// Take a fresh full checkpoint every `full_every` generations
    /// (chain compaction by re-basing); `0` means only generation 0 is
    /// full and the chain grows until explicitly compacted.
    pub full_every: u64,
}

impl CheckpointPolicy {
    /// Incremental checkpoints every `interval`, re-based every
    /// `full_every` generations.
    pub fn incremental(interval: SimDuration, full_every: u64) -> Self {
        Self { interval, full_every }
    }

    /// Full checkpoints every `interval` (the non-incremental
    /// baseline).
    pub fn always_full(interval: SimDuration) -> Self {
        Self { interval, full_every: 1 }
    }
}

/// A planned checkpoint for the current generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedCheckpoint {
    /// Generation number to write.
    pub generation: u64,
    /// Full or incremental.
    pub kind: ChunkKind,
    /// Parent generation for incremental chunks.
    pub parent: Option<u64>,
}

/// Per-rank deterministic checkpoint state machine.
///
/// ```
/// use ickpt_core::coordinator::{CheckpointPlanner, CheckpointPolicy};
/// use ickpt_sim::{SimDuration, SimTime};
/// use ickpt_storage::ChunkKind;
///
/// let policy = CheckpointPolicy::incremental(SimDuration::from_secs(10), 0);
/// let mut p = CheckpointPlanner::new(policy, SimTime::ZERO);
/// assert!(!p.due(SimTime::from_secs(9)));
/// assert!(p.due(SimTime::from_secs(12)));
/// let c0 = p.plan(SimTime::from_secs(12));
/// assert_eq!(c0.kind, ChunkKind::Full); // generation 0 is the base
/// let c1 = p.plan(SimTime::from_secs(22));
/// assert_eq!((c1.kind, c1.parent), (ChunkKind::Incremental, Some(0)));
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointPlanner {
    policy: CheckpointPolicy,
    next_generation: u64,
    last_checkpoint: SimTime,
    /// Generation of the last *committed* checkpoint (for recovery).
    last_committed: Option<u64>,
}

impl CheckpointPlanner {
    /// A fresh planner; the first checkpoint is due `interval` after
    /// `start`.
    pub fn new(policy: CheckpointPolicy, start: SimTime) -> Self {
        Self { policy, next_generation: 0, last_checkpoint: start, last_committed: None }
    }

    /// Whether this rank should vote CHECKPOINT at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        now.saturating_sub(self.last_checkpoint) >= self.policy.interval
    }

    /// Plan the next checkpoint (call when the *global* decision said
    /// to checkpoint, at the agreed virtual time `now`). Advances the
    /// lineage.
    pub fn plan(&mut self, now: SimTime) -> PlannedCheckpoint {
        let generation = self.next_generation;
        let is_full = generation == 0
            || (self.policy.full_every > 0 && generation.is_multiple_of(self.policy.full_every));
        let planned = PlannedCheckpoint {
            generation,
            kind: if is_full { ChunkKind::Full } else { ChunkKind::Incremental },
            parent: if is_full { None } else { Some(generation - 1) },
        };
        self.next_generation += 1;
        self.last_checkpoint = now;
        planned
    }

    /// Record that `generation`'s manifest committed.
    pub fn committed(&mut self, generation: u64) {
        self.last_committed = Some(generation);
    }

    /// The last committed generation, if any.
    pub fn last_committed(&self) -> Option<u64> {
        self.last_committed
    }

    /// Re-arm the planner after recovery: the next generation continues
    /// after `generation` and the interval clock restarts at `now`.
    pub fn resume_after(&mut self, generation: u64, now: SimTime) {
        self.next_generation = generation + 1;
        self.last_checkpoint = now;
        self.last_committed = Some(generation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner(interval_s: u64, full_every: u64) -> CheckpointPlanner {
        CheckpointPlanner::new(
            CheckpointPolicy::incremental(SimDuration::from_secs(interval_s), full_every),
            SimTime::ZERO,
        )
    }

    #[test]
    fn vote_flags_or_semantics() {
        let a = VoteFlags::none().with(VoteFlags::CHECKPOINT);
        let b = VoteFlags::none().with(VoteFlags::FAIL);
        let combined = VoteFlags(a.0 | b.0);
        assert!(combined.has(VoteFlags::CHECKPOINT));
        assert!(combined.has(VoteFlags::FAIL));
        assert!(!combined.has(VoteFlags::STOP));
    }

    #[test]
    fn due_after_interval() {
        let p = planner(10, 0);
        assert!(!p.due(SimTime::from_secs(9)));
        assert!(p.due(SimTime::from_secs(10)));
        assert!(p.due(SimTime::from_secs(11)));
    }

    #[test]
    fn lineage_first_full_then_incremental() {
        let mut p = planner(10, 0);
        let c0 = p.plan(SimTime::from_secs(10));
        assert_eq!(c0, PlannedCheckpoint { generation: 0, kind: ChunkKind::Full, parent: None });
        let c1 = p.plan(SimTime::from_secs(20));
        assert_eq!(
            c1,
            PlannedCheckpoint { generation: 1, kind: ChunkKind::Incremental, parent: Some(0) }
        );
        let c2 = p.plan(SimTime::from_secs(30));
        assert_eq!(c2.parent, Some(1));
    }

    #[test]
    fn plan_resets_interval_clock() {
        let mut p = planner(10, 0);
        p.plan(SimTime::from_secs(12));
        assert!(!p.due(SimTime::from_secs(21)));
        assert!(p.due(SimTime::from_secs(22)));
    }

    #[test]
    fn periodic_rebase() {
        let mut p = planner(1, 3);
        let kinds: Vec<ChunkKind> = (0..7).map(|i| p.plan(SimTime::from_secs(i)).kind).collect();
        use ChunkKind::*;
        assert_eq!(
            kinds,
            vec![Full, Incremental, Incremental, Full, Incremental, Incremental, Full]
        );
    }

    #[test]
    fn always_full_baseline() {
        let mut p = CheckpointPlanner::new(
            CheckpointPolicy::always_full(SimDuration::from_secs(1)),
            SimTime::ZERO,
        );
        assert_eq!(p.plan(SimTime::ZERO).kind, ChunkKind::Full);
        assert_eq!(p.plan(SimTime::ZERO).kind, ChunkKind::Full);
    }

    #[test]
    fn commit_and_resume() {
        let mut p = planner(10, 0);
        let c0 = p.plan(SimTime::from_secs(10));
        p.committed(c0.generation);
        assert_eq!(p.last_committed(), Some(0));
        // Recovery at t=35 from generation 0.
        p.resume_after(0, SimTime::from_secs(35));
        let c1 = p.plan(SimTime::from_secs(45));
        assert_eq!(c1.generation, 1);
        assert_eq!(c1.parent, Some(0));
        assert!(!p.due(SimTime::from_secs(44)));
    }
}
