//! Feasibility analysis: required vs available bandwidth.
//!
//! The paper's central question (§3): "By comparing the required
//! bandwidth with the bandwidth available, we will determine the
//! feasibility of implementing a checkpoint mechanism." Its reference
//! devices are the QsNet II network at 900 MB/s and a SCSI disk at
//! 320 MB/s, and its headline result (§6.3) is that even the most
//! demanding application (Sage-1000MB) needs on average only 78.8 MB/s
//! at a 1 s timeslice — 9 % of peak network and 25 % of peak disk
//! bandwidth.

use ickpt_sim::DevicePreset;

use crate::metrics::IbStats;

/// Verdict against a single device.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityVerdict {
    /// Device name (e.g. "QsNet II network").
    pub device: String,
    /// Device peak bandwidth in MB/s (MB = 10⁶ bytes).
    pub device_mbps: f64,
    /// Average required IB as a fraction of device bandwidth.
    pub avg_fraction: f64,
    /// Maximum required IB as a fraction of device bandwidth.
    pub max_fraction: f64,
    /// Feasible iff even the *maximum* requirement fits under peak.
    pub feasible: bool,
}

/// Verdicts against a set of devices for one application/timeslice.
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibilityReport {
    /// The measured bandwidth requirement.
    pub stats: IbStats,
    /// One verdict per device.
    pub verdicts: Vec<FeasibilityVerdict>,
}

impl FeasibilityReport {
    /// Analyze `stats` against the paper's reference devices (QsNet II
    /// and SCSI disk).
    pub fn against_paper_devices(stats: IbStats) -> Self {
        Self::against(
            stats,
            &[("QsNet II network", DevicePreset::QsNet2), ("SCSI disk", DevicePreset::ScsiDisk)],
        )
    }

    /// Analyze `stats` against arbitrary devices.
    pub fn against(stats: IbStats, devices: &[(&str, DevicePreset)]) -> Self {
        let verdicts = devices
            .iter()
            .map(|(name, preset)| {
                let device_mbps = preset.bandwidth() as f64 / 1e6;
                FeasibilityVerdict {
                    device: (*name).to_string(),
                    device_mbps,
                    avg_fraction: stats.avg_mbps / device_mbps,
                    max_fraction: stats.max_mbps / device_mbps,
                    feasible: stats.max_mbps <= device_mbps,
                }
            })
            .collect();
        Self { stats, verdicts }
    }

    /// Feasible on every analyzed device.
    pub fn feasible_everywhere(&self) -> bool {
        self.verdicts.iter().all(|v| v.feasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(avg: f64, max: f64) -> IbStats {
        IbStats { avg_mbps: avg, max_mbps: max, avg_ratio_percent: 0.0, windows: 100 }
    }

    #[test]
    fn paper_headline_numbers() {
        // Sage-1000MB at 1 s: avg 78.8 MB/s, max 274.9 MB/s (Table 4).
        let r = FeasibilityReport::against_paper_devices(stats(78.8, 274.9));
        assert!(r.feasible_everywhere());
        let net = &r.verdicts[0];
        // "9% of the available peak network" (§6.3).
        assert!((net.avg_fraction - 0.0876).abs() < 0.01);
        let disk = &r.verdicts[1];
        // "25% of the peak disk bandwidth".
        assert!((disk.avg_fraction - 0.246).abs() < 0.01);
    }

    #[test]
    fn infeasible_when_max_exceeds_device() {
        let r = FeasibilityReport::against_paper_devices(stats(100.0, 1000.0));
        assert!(!r.verdicts[0].feasible, "1000 > 900 MB/s network");
        assert!(!r.verdicts[1].feasible);
        assert!(!r.feasible_everywhere());
    }

    #[test]
    fn mixed_verdicts() {
        let r = FeasibilityReport::against_paper_devices(stats(100.0, 500.0));
        assert!(r.verdicts[0].feasible, "500 <= 900");
        assert!(!r.verdicts[1].feasible, "500 > 320");
    }
}
