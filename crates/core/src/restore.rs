//! Rollback recovery: rebuild an address space from stable storage.
//!
//! "In the event of a failure, the application can be rolled-back from
//! the most recent checkpoint to restart the execution as if the fault
//! had never occurred" (§1). Restoring an incremental checkpoint walks
//! the chain: find the most recent **committed** generation (one with a
//! complete manifest), load that generation's chunk, follow parent
//! links back to the base full chunk, then apply base-to-newest so
//! later pages overwrite earlier ones. Mapping state (heap break, live
//! mmap blocks) comes from the newest chunk; the paper's memory
//! exclusion means pages absent from the final mapping are skipped.

use ickpt_mem::{BackedSpace, PageRange, PageSink};
use ickpt_storage::{Chunk, ChunkKey, ChunkKind, Manifest, StableStorage, CHUNK_PAGE_SIZE};

use crate::error::CoreError;

/// What a restore did, for reporting and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreReport {
    /// Generation restored to.
    pub generation: u64,
    /// Number of chunks applied (1 = full only).
    pub chain_length: usize,
    /// Total pages applied (including overwrites along the chain).
    pub pages_applied: u64,
    /// Pages skipped because the final mapping no longer contains them
    /// (memory exclusion at restore time).
    pub pages_excluded: u64,
    /// Total bytes read from stable storage.
    pub bytes_read: u64,
}

/// The newest generation with a complete committed manifest, if any.
pub fn latest_committed_generation(
    store: &dyn StableStorage,
    nranks: u32,
) -> Result<Option<u64>, CoreError> {
    let gens = store.list_manifests()?;
    for &g in gens.iter().rev() {
        let m = Manifest::decode(&store.get_manifest(g)?)?;
        if m.nranks == nranks && m.is_complete() {
            return Ok(Some(g));
        }
    }
    Ok(None)
}

/// Load the chunk chain for `rank` ending at `generation`: base first.
fn load_chain(
    store: &dyn StableStorage,
    rank: u32,
    generation: u64,
) -> Result<(Vec<Chunk>, u64), CoreError> {
    let mut chain = Vec::new();
    let mut bytes_read = 0u64;
    let mut gen = generation;
    loop {
        let data = store.get_chunk(ChunkKey::new(rank, gen)).map_err(|e| match e {
            ickpt_storage::StorageError::NotFound(_) => {
                CoreError::BrokenChain { rank, missing_generation: gen }
            }
            other => CoreError::Storage(other),
        })?;
        bytes_read += data.len() as u64;
        let chunk = Chunk::decode(&data)?;
        if chunk.rank != rank {
            return Err(CoreError::RankMismatch { expected: rank, found: chunk.rank });
        }
        let parent = chunk.parent;
        let kind = chunk.kind;
        chain.push(chunk);
        match (kind, parent) {
            (ChunkKind::Full, _) => break,
            (ChunkKind::Incremental, Some(p)) => gen = p,
            (ChunkKind::Incremental, None) => unreachable!("decode enforces lineage"),
        }
    }
    chain.reverse();
    Ok((chain, bytes_read))
}

/// Restore `rank`'s state at `generation` into `space`. The space must
/// have the same layout the checkpoint was taken from.
pub fn restore_rank(
    store: &dyn StableStorage,
    rank: u32,
    generation: u64,
    space: &mut BackedSpace,
) -> Result<RestoreReport, CoreError> {
    let (chain, bytes_read) = load_chain(store, rank, generation)?;
    let newest = chain.last().expect("chain is non-empty");

    // Rebuild mapping state from the newest chunk.
    let mmap_live: Vec<PageRange> =
        newest.mmap_blocks.iter().map(|&(s, l)| PageRange::new(s, l)).collect();
    space.restore_mapping_state(newest.heap_pages, &mmap_live)?;

    // Apply base-to-newest; skip pages outside the final mapping.
    let mut pages_applied = 0u64;
    let mut pages_excluded = 0u64;
    let zero_page = vec![0u8; CHUNK_PAGE_SIZE];
    for chunk in &chain {
        for &(start, len) in &chunk.zero_ranges {
            for page in start..start + len {
                if ickpt_mem::AddressSpace::is_mapped(space, page) {
                    space.write_page_data(page, &zero_page)?;
                    pages_applied += 1;
                } else {
                    pages_excluded += 1;
                }
            }
        }
        for rec in &chunk.records {
            for (i, page_bytes) in rec.data.chunks_exact(CHUNK_PAGE_SIZE).enumerate() {
                let page = rec.start_page + i as u64;
                if ickpt_mem::AddressSpace::is_mapped(space, page) {
                    space.write_page_data(page, page_bytes)?;
                    pages_applied += 1;
                } else {
                    pages_excluded += 1;
                }
            }
        }
    }
    Ok(RestoreReport {
        generation,
        chain_length: chain.len(),
        pages_applied,
        pages_excluded,
        bytes_read,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{capture_full, capture_incremental};
    use ickpt_mem::{AddressSpace, LayoutBuilder, PAGE_SIZE};
    use ickpt_sim::SimTime;
    use ickpt_storage::{ChunkKind as CK, MemStore, RankEntry};

    fn layout() -> ickpt_mem::DataLayout {
        LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(8 * PAGE_SIZE)
            .mmap_capacity_bytes(8 * PAGE_SIZE)
            .build()
    }

    fn put(store: &MemStore, chunk: &Chunk) {
        store.put_chunk(ChunkKey::new(chunk.rank, chunk.generation), &chunk.encode()).unwrap();
    }

    #[test]
    fn full_checkpoint_roundtrip_restores_exact_state() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(3).unwrap();
        s.mmap(2).unwrap();
        for r in s.mapped_ranges() {
            for p in r.iter() {
                s.fill_page(p, 1000 + p).unwrap();
            }
        }
        let digest = s.content_digest();
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));

        let mut fresh = BackedSpace::new(layout());
        let report = restore_rank(&store, 0, 0, &mut fresh).unwrap();
        assert_eq!(report.chain_length, 1);
        assert_eq!(report.pages_applied, s.mapped_pages());
        assert_eq!(report.pages_excluded, 0);
        assert_eq!(fresh.content_digest(), digest);
        assert_eq!(fresh.mapped_ranges(), s.mapped_ranges());
    }

    #[test]
    fn incremental_chain_equals_final_state() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(4).unwrap();
        for p in 0..8 {
            s.fill_page(p, p).unwrap();
        }
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));

        // Mutate some pages, take an increment.
        s.fill_page(1, 77).unwrap();
        s.fill_page(5, 88).unwrap();
        put(
            &store,
            &capture_incremental(
                &s,
                0,
                1,
                0,
                SimTime::from_secs(1),
                &[PageRange::new(1, 1), PageRange::new(5, 1)],
            ),
        );

        // Mutate again, second increment.
        s.fill_page(1, 99).unwrap();
        put(
            &store,
            &capture_incremental(&s, 0, 2, 1, SimTime::from_secs(2), &[PageRange::new(1, 1)]),
        );
        let final_digest = s.content_digest();

        let mut fresh = BackedSpace::new(layout());
        let report = restore_rank(&store, 0, 2, &mut fresh).unwrap();
        assert_eq!(report.chain_length, 3);
        assert_eq!(fresh.content_digest(), final_digest);
    }

    #[test]
    fn restore_to_intermediate_generation() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(1).unwrap();
        s.fill_page(0, 1).unwrap();
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));
        let digest_g0 = s.content_digest();

        s.fill_page(0, 2).unwrap();
        put(&store, &capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[PageRange::new(0, 1)]));

        let mut fresh = BackedSpace::new(layout());
        restore_rank(&store, 0, 0, &mut fresh).unwrap();
        assert_eq!(fresh.content_digest(), digest_g0, "older generation still restorable");
    }

    #[test]
    fn broken_chain_is_detected() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(1).unwrap();
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));
        put(&store, &capture_incremental(&s, 0, 2, 1, SimTime::ZERO, &[]));
        // Generation 1 (the parent) was never stored.
        let mut fresh = BackedSpace::new(layout());
        match restore_rank(&store, 0, 2, &mut fresh) {
            Err(CoreError::BrokenChain { missing_generation: 1, .. }) => {}
            other => panic!("expected BrokenChain, got {other:?}"),
        }
    }

    #[test]
    fn exclusion_skips_pages_unmapped_in_final_state() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(4).unwrap();
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));
        // Shrink the heap, then take an increment: the final mapping
        // has only 1 heap page.
        s.heap_shrink(3).unwrap();
        put(&store, &capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[]));

        let mut fresh = BackedSpace::new(layout());
        let report = restore_rank(&store, 0, 1, &mut fresh).unwrap();
        assert_eq!(fresh.heap_pages(), 1);
        assert_eq!(report.pages_excluded, 3, "base pages beyond the new break skipped");
        assert_eq!(fresh.content_digest(), s.content_digest());
    }

    #[test]
    fn latest_committed_generation_requires_complete_manifest() {
        let store = MemStore::new();
        assert_eq!(latest_committed_generation(&store, 2).unwrap(), None);
        let complete = Manifest {
            generation: 1,
            commit_time_ns: 0,
            nranks: 2,
            entries: vec![
                RankEntry { rank: 0, kind: CK::Full, parent: None, payload_bytes: 0 },
                RankEntry { rank: 1, kind: CK::Full, parent: None, payload_bytes: 0 },
            ],
        };
        let incomplete = Manifest {
            generation: 2,
            commit_time_ns: 0,
            nranks: 2,
            entries: vec![RankEntry { rank: 0, kind: CK::Full, parent: None, payload_bytes: 0 }],
        };
        store.put_manifest(1, &complete.encode()).unwrap();
        store.put_manifest(2, &incomplete.encode()).unwrap();
        assert_eq!(
            latest_committed_generation(&store, 2).unwrap(),
            Some(1),
            "incomplete newer manifest ignored"
        );
        // Wrong nranks also ignored.
        assert_eq!(latest_committed_generation(&store, 3).unwrap(), None);
    }
}
