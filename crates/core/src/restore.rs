//! Rollback recovery: rebuild an address space from stable storage.
//!
//! "In the event of a failure, the application can be rolled-back from
//! the most recent checkpoint to restart the execution as if the fault
//! had never occurred" (§1). Restoring an incremental checkpoint walks
//! the chain: find the most recent **committed** generation (one with a
//! complete manifest), load that generation's chunk, follow parent
//! links back to the base full chunk. Mapping state (heap break, live
//! mmap blocks) comes from the newest chunk; the paper's memory
//! exclusion means pages absent from the final mapping are skipped.
//!
//! Two executions of that recovery exist:
//!
//! * [`restore_rank_sequential`] replays the chain base-to-newest so
//!   later pages overwrite earlier ones — O(chain × pages) writes. It
//!   is kept as the executable reference semantics the property suite
//!   compares against.
//! * [`restore_rank`] / [`restore_rank_with`] build a latest-wins
//!   [`RestorePlan`] and touch each live page exactly once regardless
//!   of chain length. The chain is walked via CRC-free header peeks
//!   ([`ickpt_storage::peek_lineage`]), then every fetched chunk is
//!   CRC-verified — in parallel across worker threads — before a single
//!   page is applied, and plan execution fans page-span shards out over
//!   the same scoped-thread machinery capture uses. The restored image
//!   and digest are byte-identical to the sequential replay (see
//!   `tests/restore_props.rs`).

use ickpt_mem::{AddressSpace, BackedSpace, PageRange, PageSink};
use ickpt_obs::{Event, Lane, Recorder};
use ickpt_sim::SimTime;
use ickpt_storage::{
    peek_lineage, shard_segments, Chunk, ChunkKey, ChunkKind, ChunkView, DeltaBase, Manifest,
    PlanSegment, RestorePlan, SegmentSource, StableStorage, StorageError, BLOCK_SIZE,
    CHUNK_PAGE_SIZE,
};

use crate::error::CoreError;

/// How a planned restore executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreConfig {
    /// Verify/apply worker threads. 1 = serial. The restored image is
    /// byte-identical for every worker count.
    pub workers: usize,
    /// Below this many planned pages, plan application stays serial
    /// regardless of `workers` (thread spawn would cost more than the
    /// copy). Chunk CRC verification still parallelizes.
    pub parallel_threshold_pages: u64,
}

impl Default for RestoreConfig {
    fn default() -> Self {
        Self { workers: 1, parallel_threshold_pages: 2048 }
    }
}

impl RestoreConfig {
    /// Serial restore (the default).
    pub fn serial() -> Self {
        Self::default()
    }

    /// Restore with `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers: workers.max(1), ..Self::default() }
    }

    /// Workers from `ICKPT_RESTORE_WORKERS`, else the machine's
    /// available parallelism (capped at 8, matching capture — page
    /// copy saturates memory bandwidth long before core count).
    pub fn from_env() -> Self {
        let workers = std::env::var("ICKPT_RESTORE_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
            });
        Self::with_workers(workers)
    }
}

/// What a restore did, for reporting and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreReport {
    /// Generation restored to.
    pub generation: u64,
    /// Number of chunks in the applied chain (1 = full only).
    pub chain_length: usize,
    /// Pages written into the space. The planned path writes each live
    /// page once; the sequential reference also counts overwrites along
    /// the chain.
    pub pages_applied: u64,
    /// Pages skipped because the final mapping no longer contains them
    /// (memory exclusion at restore time).
    pub pages_excluded: u64,
    /// Stored pages the planner skipped because a newer generation
    /// overwrote them (always 0 for the sequential reference, which
    /// writes them and then overwrites).
    pub pages_superseded: u64,
    /// Total bytes read from stable storage.
    pub bytes_read: u64,
    /// Application state blob of the restored generation.
    pub app_state: Vec<u8>,
    /// Capture instant of the restored generation, in virtual ns.
    pub capture_time_ns: u64,
}

/// Record a finished restore on the flight recorder: one `Restore`
/// span on the rank lane covering `[started, finished]` in the
/// restoring process's virtual clock (rollback reads advance it via
/// the timed storage readers, so the span length is the virtual read
/// cost of the rollback).
pub fn record_restore(
    obs: &Recorder,
    rank: u32,
    started: SimTime,
    finished: SimTime,
    report: &RestoreReport,
) {
    obs.emit_span(
        Lane::Rank(rank),
        started,
        finished.saturating_sub(started),
        Event::Restore {
            generation: report.generation,
            chain: report.chain_length as u64,
            pages: report.pages_applied,
            bytes: report.bytes_read,
        },
    );
}

/// The newest generation with a complete committed manifest, if any.
pub fn latest_committed_generation(
    store: &dyn StableStorage,
    nranks: u32,
) -> Result<Option<u64>, CoreError> {
    let gens = store.list_manifests()?;
    for &g in gens.iter().rev() {
        let m = Manifest::decode(&store.get_manifest(g)?)?;
        if m.nranks == nranks && m.is_complete() {
            return Ok(Some(g));
        }
    }
    Ok(None)
}

/// Fetch the encoded chunk chain for `rank` ending at `generation`,
/// newest first, following parent links read from *unverified* header
/// peeks. Returns the buffers plus the generation a `NotFound` stopped
/// the walk at, if any. CRC verification is deferred to
/// [`decode_chain`], so a corrupted chunk surfaces the same error the
/// sequential fetch-and-decode loop reports.
fn fetch_chain(
    store: &dyn StableStorage,
    rank: u32,
    generation: u64,
) -> Result<(Vec<Vec<u8>>, Option<u64>), CoreError> {
    let mut bufs: Vec<Vec<u8>> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut gen = generation;
    loop {
        if !seen.insert(gen) {
            // A parent cycle can only come from corruption the peek did
            // not see; the verify pass settles which error to report.
            break;
        }
        match store.get_chunk(ChunkKey::new(rank, gen)) {
            Ok(data) => {
                let lineage = peek_lineage(&data);
                bufs.push(data);
                match lineage {
                    Ok(l) => match (l.kind, l.parent) {
                        (ChunkKind::Full, _) => break,
                        (ChunkKind::Incremental, Some(p)) => gen = p,
                        // Full decode rejects this; stop the walk here.
                        (ChunkKind::Incremental, None) => break,
                    },
                    // Full decode reproduces the exact error.
                    Err(_) => break,
                }
            }
            Err(StorageError::NotFound(_)) => {
                return Ok((bufs, Some(gen)));
            }
            Err(other) => return Err(CoreError::Storage(other)),
        }
    }
    Ok((bufs, None))
}

/// CRC-verify and decode every fetched buffer (`bufs` newest first),
/// fanning the work across up to `workers` threads. Errors are
/// reported in the order the sequential fetch-decode loop would hit
/// them: newest to base, decode failure before rank check per chunk.
fn decode_chain<'a>(
    bufs: &'a [Vec<u8>],
    rank: u32,
    workers: usize,
) -> Result<Vec<ChunkView<'a>>, CoreError> {
    let workers = workers.min(bufs.len()).max(1);
    let decoded: Vec<Result<ChunkView<'a>, StorageError>> = if workers > 1 {
        let mut slots: Vec<Option<Result<ChunkView<'a>, StorageError>>> = Vec::new();
        slots.resize_with(bufs.len(), || None);
        let chunk_len = bufs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (bufs_part, slots_part) in bufs.chunks(chunk_len).zip(slots.chunks_mut(chunk_len)) {
                scope.spawn(move || {
                    for (buf, slot) in bufs_part.iter().zip(slots_part.iter_mut()) {
                        *slot = Some(ChunkView::decode(buf));
                    }
                });
            }
        });
        slots.into_iter().map(|s| s.expect("every slot filled")).collect()
    } else {
        bufs.iter().map(|b| ChunkView::decode(b)).collect()
    };
    let mut views = Vec::with_capacity(decoded.len());
    for result in decoded {
        let view = result?;
        if view.rank != rank {
            return Err(CoreError::RankMismatch { expected: rank, found: view.rank });
        }
        views.push(view);
    }
    Ok(views)
}

/// Restore `rank`'s state at `generation` into `space` with the default
/// (serial) planned execution. The space must have the same layout the
/// checkpoint was taken from.
pub fn restore_rank(
    store: &dyn StableStorage,
    rank: u32,
    generation: u64,
    space: &mut BackedSpace,
) -> Result<RestoreReport, CoreError> {
    restore_rank_with(store, rank, generation, space, &RestoreConfig::default())
}

/// Plan-driven restore: fetch the chain via header peeks, CRC-verify
/// every chunk (in parallel), build a latest-wins [`RestorePlan`] and
/// execute it — each live page is read, decoded and written exactly
/// once, no matter how long the chain is.
pub fn restore_rank_with(
    store: &dyn StableStorage,
    rank: u32,
    generation: u64,
    space: &mut BackedSpace,
    cfg: &RestoreConfig,
) -> Result<RestoreReport, CoreError> {
    let (bufs, missing) = fetch_chain(store, rank, generation)?;
    let bytes_read: u64 = bufs.iter().map(|b| b.len() as u64).sum();
    // Verify before reporting a broken chain so a corrupted chunk fails
    // exactly like the sequential decode-as-you-fetch loop.
    let mut views = decode_chain(&bufs, rank, cfg.workers)?;
    if let Some(missing_generation) = missing {
        return Err(CoreError::BrokenChain { rank, missing_generation });
    }
    if views.last().map(|v| v.kind) != Some(ChunkKind::Full) {
        return Err(CoreError::Storage(StorageError::Corrupt(
            "checkpoint chain never reaches a full chunk (parent cycle)".into(),
        )));
    }
    views.reverse(); // base first, the planner's chain order
    let newest = views.last().expect("chain is non-empty");
    let app_state = newest.app_state.to_vec();
    let capture_time_ns = newest.capture_time_ns;
    let chain_length = views.len();

    let mmap_live: Vec<PageRange> =
        newest.mmap_blocks.iter().map(|&(s, l)| PageRange::new(s, l)).collect();
    let heap_pages = newest.heap_pages;
    space.restore_mapping_state(heap_pages, &mmap_live)?;

    let plan = {
        let space_ro: &BackedSpace = space;
        let keep = |page: u64| space_ro.is_mapped(page);
        RestorePlan::build(&views, Some(&keep))
    };

    // Every planned page is mapped (the keep predicate) and segments
    // are disjoint, which is the writer's safety contract.
    let writer = space.parallel_page_writer();
    let apply = |segments: &[PlanSegment]| {
        let mut page_buf = [0u8; CHUNK_PAGE_SIZE];
        for seg in segments {
            match seg.source {
                // SAFETY: disjoint planned spans, bounds within arena.
                SegmentSource::Zero => unsafe { writer.zero_pages(seg.start_page, seg.pages) },
                SegmentSource::Record { rec, rec_page_offset } => {
                    let bytes = views[seg.chunk].record_pages(rec, rec_page_offset, seg.pages);
                    // SAFETY: as above.
                    unsafe { writer.write_pages(seg.start_page, bytes) };
                }
                SegmentSource::Delta { rec, base } => {
                    // Materialize the base page (an older whole record
                    // or a zero run — the alternation rule guarantees
                    // depth one), then overlay the changed blocks.
                    match base {
                        DeltaBase::Zero => page_buf.fill(0),
                        DeltaBase::Record { chunk, rec: brec, rec_page_offset } => {
                            page_buf.copy_from_slice(views[chunk].record_pages(
                                brec,
                                rec_page_offset,
                                1,
                            ));
                        }
                    }
                    let dref = &views[seg.chunk].delta_records[rec];
                    let data = views[seg.chunk].delta_data(rec);
                    let mut off = 0usize;
                    for b in 0..ickpt_storage::BLOCKS_PER_PAGE {
                        if dref.mask & (1 << b) != 0 {
                            page_buf[b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE]
                                .copy_from_slice(&data[off..off + BLOCK_SIZE]);
                            off += BLOCK_SIZE;
                        }
                    }
                    // SAFETY: as above.
                    unsafe { writer.write_pages(seg.start_page, &page_buf) };
                }
            }
        }
    };
    if cfg.workers <= 1 || plan.applied_pages() < cfg.parallel_threshold_pages {
        apply(&plan.segments);
    } else {
        let shards = shard_segments(&plan.segments, cfg.workers);
        let apply_ref = &apply;
        std::thread::scope(|scope| {
            for shard in &shards {
                scope.spawn(move || apply_ref(shard));
            }
        });
    }

    Ok(RestoreReport {
        generation,
        chain_length,
        pages_applied: plan.applied_pages(),
        pages_excluded: plan.excluded_pages,
        pages_superseded: plan.superseded_pages,
        bytes_read,
        app_state,
        capture_time_ns,
    })
}

/// Load the chunk chain for `rank` ending at `generation`: base first.
fn load_chain(
    store: &dyn StableStorage,
    rank: u32,
    generation: u64,
) -> Result<(Vec<Chunk>, u64), CoreError> {
    let mut chain = Vec::new();
    let mut bytes_read = 0u64;
    let mut gen = generation;
    loop {
        let data = store.get_chunk(ChunkKey::new(rank, gen)).map_err(|e| match e {
            StorageError::NotFound(_) => CoreError::BrokenChain { rank, missing_generation: gen },
            other => CoreError::Storage(other),
        })?;
        bytes_read += data.len() as u64;
        let chunk = Chunk::decode(&data)?;
        if chunk.rank != rank {
            return Err(CoreError::RankMismatch { expected: rank, found: chunk.rank });
        }
        let parent = chunk.parent;
        let kind = chunk.kind;
        chain.push(chunk);
        match (kind, parent) {
            (ChunkKind::Full, _) => break,
            (ChunkKind::Incremental, Some(p)) => gen = p,
            (ChunkKind::Incremental, None) => unreachable!("decode enforces lineage"),
        }
    }
    chain.reverse();
    Ok((chain, bytes_read))
}

/// Reference restore semantics: replay the chain base-to-newest so
/// later pages overwrite earlier ones — O(chain × pages). The planned
/// path must be byte-identical to this; the property suite enforces it.
pub fn restore_rank_sequential(
    store: &dyn StableStorage,
    rank: u32,
    generation: u64,
    space: &mut BackedSpace,
) -> Result<RestoreReport, CoreError> {
    let (chain, bytes_read) = load_chain(store, rank, generation)?;
    let newest = chain.last().expect("chain is non-empty");
    let app_state = newest.app_state.clone();
    let capture_time_ns = newest.capture_time_ns;

    // Rebuild mapping state from the newest chunk.
    let mmap_live: Vec<PageRange> =
        newest.mmap_blocks.iter().map(|&(s, l)| PageRange::new(s, l)).collect();
    space.restore_mapping_state(newest.heap_pages, &mmap_live)?;

    // Apply base-to-newest; skip pages outside the final mapping.
    let mut pages_applied = 0u64;
    let mut pages_excluded = 0u64;
    let zero_page = vec![0u8; CHUNK_PAGE_SIZE];
    for chunk in &chain {
        for &(start, len) in &chunk.zero_ranges {
            for page in start..start + len {
                if ickpt_mem::AddressSpace::is_mapped(space, page) {
                    space.write_page_data(page, &zero_page)?;
                    pages_applied += 1;
                } else {
                    pages_excluded += 1;
                }
            }
        }
        for rec in &chunk.records {
            for (i, page_bytes) in rec.data.chunks_exact(CHUNK_PAGE_SIZE).enumerate() {
                let page = rec.start_page + i as u64;
                if ickpt_mem::AddressSpace::is_mapped(space, page) {
                    space.write_page_data(page, page_bytes)?;
                    pages_applied += 1;
                } else {
                    pages_excluded += 1;
                }
            }
        }
        // Delta records patch the page the chain has built so far (the
        // base was applied by an older chunk in a previous iteration).
        for delta in &chunk.delta_records {
            if ickpt_mem::AddressSpace::is_mapped(space, delta.page) {
                let mut page_buf = [0u8; CHUNK_PAGE_SIZE];
                page_buf.copy_from_slice(
                    ickpt_mem::PageSource::read_page(space, delta.page)
                        .expect("mapped page is readable"),
                );
                for (b, block) in delta.blocks() {
                    page_buf[b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE].copy_from_slice(block);
                }
                space.write_page_data(delta.page, &page_buf)?;
                pages_applied += 1;
            } else {
                pages_excluded += 1;
            }
        }
    }
    Ok(RestoreReport {
        generation,
        chain_length: chain.len(),
        pages_applied,
        pages_excluded,
        pages_superseded: 0,
        bytes_read,
        app_state,
        capture_time_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{capture_full, capture_incremental};
    use ickpt_mem::{AddressSpace, LayoutBuilder, PAGE_SIZE};
    use ickpt_sim::SimTime;
    use ickpt_storage::{ChunkKind as CK, MemStore, RankEntry};

    fn layout() -> ickpt_mem::DataLayout {
        LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(8 * PAGE_SIZE)
            .mmap_capacity_bytes(8 * PAGE_SIZE)
            .build()
    }

    fn put(store: &MemStore, chunk: &Chunk) {
        store.put_chunk(ChunkKey::new(chunk.rank, chunk.generation), &chunk.encode()).unwrap();
    }

    #[test]
    fn full_checkpoint_roundtrip_restores_exact_state() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(3).unwrap();
        s.mmap(2).unwrap();
        for r in s.mapped_ranges() {
            for p in r.iter() {
                s.fill_page(p, 1000 + p).unwrap();
            }
        }
        let digest = s.content_digest();
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));

        let mut fresh = BackedSpace::new(layout());
        let report = restore_rank(&store, 0, 0, &mut fresh).unwrap();
        assert_eq!(report.chain_length, 1);
        assert_eq!(report.pages_applied, s.mapped_pages());
        assert_eq!(report.pages_excluded, 0);
        assert_eq!(report.pages_superseded, 0);
        assert_eq!(fresh.content_digest(), digest);
        assert_eq!(fresh.mapped_ranges(), s.mapped_ranges());
    }

    #[test]
    fn incremental_chain_equals_final_state() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(4).unwrap();
        for p in 0..8 {
            s.fill_page(p, p).unwrap();
        }
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));

        // Mutate some pages, take an increment.
        s.fill_page(1, 77).unwrap();
        s.fill_page(5, 88).unwrap();
        put(
            &store,
            &capture_incremental(
                &s,
                0,
                1,
                0,
                SimTime::from_secs(1),
                &[PageRange::new(1, 1), PageRange::new(5, 1)],
            ),
        );

        // Mutate again, second increment.
        s.fill_page(1, 99).unwrap();
        put(
            &store,
            &capture_incremental(&s, 0, 2, 1, SimTime::from_secs(2), &[PageRange::new(1, 1)]),
        );
        let final_digest = s.content_digest();

        let mut fresh = BackedSpace::new(layout());
        let report = restore_rank(&store, 0, 2, &mut fresh).unwrap();
        assert_eq!(report.chain_length, 3);
        assert_eq!(
            report.pages_superseded, 3,
            "base's pages 1 and 5 plus g1's page 1 are shadowed by newer records"
        );
        assert_eq!(fresh.content_digest(), final_digest);
    }

    #[test]
    fn planned_and_sequential_reports_agree_on_live_set() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(4).unwrap();
        for p in 0..8 {
            s.fill_page(p, p).unwrap();
        }
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));
        s.fill_page(2, 7).unwrap();
        put(&store, &capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[PageRange::new(2, 1)]));

        let mut a = BackedSpace::new(layout());
        let planned = restore_rank(&store, 0, 1, &mut a).unwrap();
        let mut b = BackedSpace::new(layout());
        let sequential = restore_rank_sequential(&store, 0, 1, &mut b).unwrap();
        assert_eq!(a.content_digest(), b.content_digest());
        assert_eq!(planned.app_state, sequential.app_state);
        assert_eq!(planned.capture_time_ns, sequential.capture_time_ns);
        assert_eq!(planned.bytes_read, sequential.bytes_read);
        // Planner writes each page once; the replay re-writes page 2.
        assert_eq!(planned.pages_applied, s.mapped_pages());
        assert_eq!(sequential.pages_applied, s.mapped_pages() + 1);
    }

    #[test]
    fn parallel_restore_matches_serial() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(6).unwrap();
        s.mmap(3).unwrap();
        for r in s.mapped_ranges() {
            for p in r.iter() {
                s.fill_page(p, 31 * p + 5).unwrap();
            }
        }
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));
        s.fill_page(4, 1234).unwrap();
        put(&store, &capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[PageRange::new(4, 1)]));
        let digest = s.content_digest();

        for workers in [1, 2, 8] {
            let cfg = RestoreConfig { workers, parallel_threshold_pages: 0 };
            let mut fresh = BackedSpace::new(layout());
            let report = restore_rank_with(&store, 0, 1, &mut fresh, &cfg).unwrap();
            assert_eq!(fresh.content_digest(), digest, "workers={workers}");
            assert_eq!(report.pages_applied, s.mapped_pages(), "workers={workers}");
        }
    }

    #[test]
    fn restore_to_intermediate_generation() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(1).unwrap();
        s.fill_page(0, 1).unwrap();
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));
        let digest_g0 = s.content_digest();

        s.fill_page(0, 2).unwrap();
        put(&store, &capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[PageRange::new(0, 1)]));

        let mut fresh = BackedSpace::new(layout());
        restore_rank(&store, 0, 0, &mut fresh).unwrap();
        assert_eq!(fresh.content_digest(), digest_g0, "older generation still restorable");
    }

    #[test]
    fn broken_chain_is_detected() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(1).unwrap();
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));
        put(&store, &capture_incremental(&s, 0, 2, 1, SimTime::ZERO, &[]));
        // Generation 1 (the parent) was never stored.
        let mut fresh = BackedSpace::new(layout());
        match restore_rank(&store, 0, 2, &mut fresh) {
            Err(CoreError::BrokenChain { missing_generation: 1, .. }) => {}
            other => panic!("expected BrokenChain, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_chunk_fails_like_sequential() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(2).unwrap();
        s.fill_page(4, 9).unwrap();
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));
        s.fill_page(4, 10).unwrap();
        put(&store, &capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[PageRange::new(4, 1)]));
        // Flip a payload byte in the base chunk: CRC must catch it.
        let mut data = store.get_chunk(ChunkKey::new(0, 0)).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        store.put_chunk(ChunkKey::new(0, 0), &data).unwrap();

        let mut a = BackedSpace::new(layout());
        let planned = restore_rank(&store, 0, 1, &mut a).unwrap_err();
        let mut b = BackedSpace::new(layout());
        let sequential = restore_rank_sequential(&store, 0, 1, &mut b).unwrap_err();
        assert_eq!(planned.to_string(), sequential.to_string());
        assert!(planned.to_string().contains("CRC mismatch"), "got: {planned}");
    }

    #[test]
    fn exclusion_skips_pages_unmapped_in_final_state() {
        let mut s = BackedSpace::new(layout());
        s.heap_grow(4).unwrap();
        let store = MemStore::new();
        put(&store, &capture_full(&s, 0, 0, SimTime::ZERO));
        // Shrink the heap, then take an increment: the final mapping
        // has only 1 heap page.
        s.heap_shrink(3).unwrap();
        put(&store, &capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[]));

        let mut fresh = BackedSpace::new(layout());
        let report = restore_rank(&store, 0, 1, &mut fresh).unwrap();
        assert_eq!(fresh.heap_pages(), 1);
        assert_eq!(report.pages_excluded, 3, "base pages beyond the new break skipped");
        assert_eq!(fresh.content_digest(), s.content_digest());
    }

    #[test]
    fn latest_committed_generation_requires_complete_manifest() {
        let store = MemStore::new();
        assert_eq!(latest_committed_generation(&store, 2).unwrap(), None);
        let complete = Manifest {
            generation: 1,
            commit_time_ns: 0,
            nranks: 2,
            entries: vec![
                RankEntry { rank: 0, kind: CK::Full, parent: None, payload_bytes: 0 },
                RankEntry { rank: 1, kind: CK::Full, parent: None, payload_bytes: 0 },
            ],
        };
        let incomplete = Manifest {
            generation: 2,
            commit_time_ns: 0,
            nranks: 2,
            entries: vec![RankEntry { rank: 0, kind: CK::Full, parent: None, payload_bytes: 0 }],
        };
        store.put_manifest(1, &complete.encode()).unwrap();
        store.put_manifest(2, &incomplete.encode()).unwrap();
        assert_eq!(
            latest_committed_generation(&store, 2).unwrap(),
            Some(1),
            "incomplete newer manifest ignored"
        );
        // Wrong nranks also ignored.
        assert_eq!(latest_committed_generation(&store, 3).unwrap(), None);
    }
}
