//! IWS and IB metrics (§6.1 of the paper).
//!
//! * **Incremental Working Set (IWS)** — the set of pages written in a
//!   timeslice. The tracker records its size per window.
//! * **Incremental Bandwidth (IB)** — IWS size divided by the timeslice
//!   length: "the basic bandwidth requirements that incremental
//!   checkpointing algorithms must face".
//!
//! The paper reports **maximum** and **average** IB per application and
//! timeslice (Table 4, Fig 2), explicitly excluding the initialization
//! write burst at the very beginning of execution (§6.3). Bandwidth is
//! reported in MB/s with MB = 10⁶ bytes, matching the paper's device
//! numbers (900 MB/s network, 320 MB/s disk).

use ickpt_sim::{SimDuration, SimTime};
use ickpt_storage::TierUsage;

const PAGE_BYTES: f64 = 4096.0;
const MB: f64 = 1_000_000.0;

/// One timeslice window's record, produced by the tracker's alarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IwsSample {
    /// Window index from the start of the run.
    pub window: u64,
    /// Virtual end time of the window.
    pub end_time: SimTime,
    /// Pages written during the window (IWS size).
    pub iws_pages: u64,
    /// Memory footprint at the alarm, in pages.
    pub footprint_pages: u64,
    /// Page faults taken during the window.
    pub faults: u64,
    /// Message payload bytes received during the window.
    pub bytes_received: u64,
}

impl IwsSample {
    /// IWS size in MB (10⁶ bytes).
    pub fn iws_mb(&self) -> f64 {
        self.iws_pages as f64 * PAGE_BYTES / MB
    }

    /// Footprint in MB.
    pub fn footprint_mb(&self) -> f64 {
        self.footprint_pages as f64 * PAGE_BYTES / MB
    }

    /// IWS-to-footprint ratio in percent (Fig 4). Zero footprint yields
    /// zero.
    pub fn iws_ratio_percent(&self) -> f64 {
        if self.footprint_pages == 0 {
            0.0
        } else {
            100.0 * self.iws_pages as f64 / self.footprint_pages as f64
        }
    }
}

/// Maximum/average Incremental Bandwidth over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IbStats {
    /// Average IB in MB/s over the analyzed windows.
    pub avg_mbps: f64,
    /// Maximum single-window IB in MB/s.
    pub max_mbps: f64,
    /// Average IWS:footprint ratio in percent (Fig 4).
    pub avg_ratio_percent: f64,
    /// Number of windows analyzed.
    pub windows: usize,
}

impl IbStats {
    /// Compute IB statistics from tracker samples, skipping every
    /// window that ends at or before `skip_until` (the paper excludes
    /// the data-initialization burst, §6.3). Only full windows of
    /// length `timeslice` are considered; a trailing partial window is
    /// excluded by construction because its `end_time` is not a
    /// multiple of the timeslice... it is excluded here by checking the
    /// window length via consecutive end times.
    pub fn from_samples(
        samples: &[IwsSample],
        timeslice: SimDuration,
        skip_until: SimTime,
    ) -> IbStats {
        let ts_secs = timeslice.as_secs_f64();
        let mut total_mb = 0.0;
        let mut max_mbps: f64 = 0.0;
        let mut ratio_sum = 0.0;
        let mut n = 0usize;
        let mut prev_end = SimTime::ZERO;
        for s in samples {
            let full_window = (s.end_time - prev_end) == timeslice;
            let skip = s.end_time <= skip_until || !full_window;
            prev_end = s.end_time;
            if skip {
                continue;
            }
            let mb = s.iws_mb();
            total_mb += mb;
            max_mbps = max_mbps.max(mb / ts_secs);
            ratio_sum += s.iws_ratio_percent();
            n += 1;
        }
        if n == 0 {
            return IbStats { avg_mbps: 0.0, max_mbps: 0.0, avg_ratio_percent: 0.0, windows: 0 };
        }
        IbStats {
            avg_mbps: total_mb / (n as f64 * ts_secs),
            max_mbps,
            avg_ratio_percent: ratio_sum / n as f64,
            windows: n,
        }
    }
}

/// Integer-only roll-up of a rank's full sample stream.
///
/// Compact report modes keep a bounded sample reservoir instead of the
/// full per-window series; this summary is accumulated over **every**
/// window regardless, so cluster-wide totals survive the elision. All
/// fields use associative integer arithmetic (saturating sums, maxes),
/// making merges order-independent — safe to aggregate through
/// `ickpt_sim::tree_reduce` at any arity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleSummary {
    /// Windows absorbed.
    pub windows: u64,
    /// Sum of per-window IWS page counts.
    pub total_iws_pages: u64,
    /// Largest single-window IWS, in pages.
    pub max_iws_pages: u64,
    /// Sum of per-window fault counts.
    pub total_faults: u64,
    /// Sum of per-window bytes received.
    pub total_bytes_received: u64,
    /// Largest footprint observed at any alarm, in pages.
    pub max_footprint_pages: u64,
    /// Latest window end time absorbed.
    pub last_end_time: SimTime,
}

impl SampleSummary {
    /// Fold one window sample into the summary.
    pub fn absorb(&mut self, s: &IwsSample) {
        self.windows = self.windows.saturating_add(1);
        self.total_iws_pages = self.total_iws_pages.saturating_add(s.iws_pages);
        self.max_iws_pages = self.max_iws_pages.max(s.iws_pages);
        self.total_faults = self.total_faults.saturating_add(s.faults);
        self.total_bytes_received = self.total_bytes_received.saturating_add(s.bytes_received);
        self.max_footprint_pages = self.max_footprint_pages.max(s.footprint_pages);
        self.last_end_time = self.last_end_time.max(s.end_time);
    }

    /// Merge another summary into this one (associative + commutative).
    pub fn merge(&mut self, other: &SampleSummary) {
        self.windows = self.windows.saturating_add(other.windows);
        self.total_iws_pages = self.total_iws_pages.saturating_add(other.total_iws_pages);
        self.max_iws_pages = self.max_iws_pages.max(other.max_iws_pages);
        self.total_faults = self.total_faults.saturating_add(other.total_faults);
        self.total_bytes_received =
            self.total_bytes_received.saturating_add(other.total_bytes_received);
        self.max_footprint_pages = self.max_footprint_pages.max(other.max_footprint_pages);
        self.last_end_time = self.last_end_time.max(other.last_end_time);
    }

    /// Mean IWS per window in MB (render-time floating point only).
    pub fn avg_iws_mb(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.total_iws_pages as f64 * PAGE_BYTES / MB / self.windows as f64
        }
    }

    /// Largest single-window IWS in MB.
    pub fn max_iws_mb(&self) -> f64 {
        self.max_iws_pages as f64 * PAGE_BYTES / MB
    }
}

/// The IWS time series in `(seconds, MB)` pairs — Fig 1(a).
pub fn iws_series(samples: &[IwsSample]) -> Vec<(f64, f64)> {
    samples.iter().map(|s| (s.end_time.as_secs_f64(), s.iws_mb())).collect()
}

/// The data-received time series in `(seconds, MB)` pairs — Fig 1(b).
pub fn received_series(samples: &[IwsSample]) -> Vec<(f64, f64)> {
    samples.iter().map(|s| (s.end_time.as_secs_f64(), s.bytes_received as f64 / MB)).collect()
}

/// Cluster-wide roll-up of per-rank multilevel-storage accounting.
///
/// Byte counters sum across ranks (total traffic each tier carried);
/// busy/recovery times take the per-rank **maximum**, because ranks
/// run concurrently and the slowest device is the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TierSummary {
    /// Ranks aggregated.
    pub ranks: usize,
    /// Checkpoint bytes written to node-local tiers, MB.
    pub local_mb: f64,
    /// Redundancy bytes (partner copies / parity shares) sent over the
    /// interconnect, MB.
    pub redundancy_mb: f64,
    /// Longest per-rank node-local device busy time, seconds.
    pub local_busy_s: f64,
    /// Longest per-rank NIC busy time charged to redundancy, seconds.
    pub nic_busy_s: f64,
    /// Recovery bytes served by the failed rank's own local tier, MB.
    pub recovery_local_mb: f64,
    /// Recovery bytes pulled over the network (partner / parity), MB.
    pub recovery_net_mb: f64,
    /// Recovery bytes read back from the shared durable tier, MB.
    pub recovery_durable_mb: f64,
    /// Longest per-rank restore time, seconds.
    pub recovery_s: f64,
}

impl TierSummary {
    /// Aggregate per-rank usage records into one cluster summary.
    pub fn from_usage(usage: &[TierUsage]) -> TierSummary {
        let mut s = TierSummary { ranks: usage.len(), ..TierSummary::default() };
        for u in usage {
            s.local_mb += u.local_bytes as f64 / MB;
            s.redundancy_mb += u.redundancy_bytes as f64 / MB;
            s.local_busy_s = s.local_busy_s.max(u.local_busy.as_secs_f64());
            s.nic_busy_s = s.nic_busy_s.max(u.nic_busy.as_secs_f64());
            s.recovery_local_mb += u.recovery_local_bytes as f64 / MB;
            s.recovery_net_mb += u.recovery_net_bytes as f64 / MB;
            s.recovery_durable_mb += u.recovery_durable_bytes as f64 / MB;
            s.recovery_s = s.recovery_s.max(u.recovery_time.as_secs_f64());
        }
        s
    }

    /// Redundancy traffic as a percentage of local checkpoint volume —
    /// the storage overhead a scheme pays for its failure coverage
    /// (≈100% for partner replication, ≈100/(g−1)% for XOR groups of
    /// size `g`).
    pub fn redundancy_overhead_percent(&self) -> f64 {
        if self.local_mb == 0.0 {
            0.0
        } else {
            100.0 * self.redundancy_mb / self.local_mb
        }
    }

    /// Total recovery traffic, MB, across all tiers.
    pub fn recovery_mb(&self) -> f64 {
        self.recovery_local_mb + self.recovery_net_mb + self.recovery_durable_mb
    }
}

/// Footprint statistics over a run: `(max_mb, avg_mb)` — Table 2.
pub fn footprint_stats(samples: &[IwsSample]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let max = samples.iter().map(|s| s.footprint_mb()).fold(0.0, f64::max);
    let avg = samples.iter().map(|s| s.footprint_mb()).sum::<f64>() / samples.len() as f64;
    (max, avg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(window: u64, end_s: u64, iws_pages: u64, footprint: u64) -> IwsSample {
        IwsSample {
            window,
            end_time: SimTime::from_secs(end_s),
            iws_pages,
            footprint_pages: footprint,
            faults: iws_pages,
            bytes_received: 0,
        }
    }

    #[test]
    fn sample_conversions() {
        let s = sample(0, 1, 1000, 2000);
        assert!((s.iws_mb() - 4.096).abs() < 1e-9);
        assert!((s.footprint_mb() - 8.192).abs() < 1e-9);
        assert!((s.iws_ratio_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_footprint_ratio_is_zero() {
        let s = sample(0, 1, 0, 0);
        assert_eq!(s.iws_ratio_percent(), 0.0);
    }

    #[test]
    fn ib_stats_avg_and_max() {
        let ts = SimDuration::from_secs(1);
        // 4.096 MB, 0 MB, 8.192 MB across three 1 s windows.
        let samples =
            vec![sample(0, 1, 1000, 4000), sample(1, 2, 0, 4000), sample(2, 3, 2000, 4000)];
        let st = IbStats::from_samples(&samples, ts, SimTime::ZERO);
        assert_eq!(st.windows, 3);
        assert!((st.avg_mbps - (4.096 + 0.0 + 8.192) / 3.0).abs() < 1e-9);
        assert!((st.max_mbps - 8.192).abs() < 1e-9);
    }

    #[test]
    fn skip_until_excludes_initialization() {
        let ts = SimDuration::from_secs(1);
        let samples = vec![sample(0, 1, 100_000, 100_000), sample(1, 2, 10, 100_000)];
        let with_init = IbStats::from_samples(&samples, ts, SimTime::ZERO);
        let without = IbStats::from_samples(&samples, ts, SimTime::from_secs(1));
        assert!(with_init.max_mbps > without.max_mbps * 100.0);
        assert_eq!(without.windows, 1);
    }

    #[test]
    fn partial_trailing_window_excluded() {
        let ts = SimDuration::from_secs(1);
        let mut samples = vec![sample(0, 1, 100, 1000), sample(1, 2, 100, 1000)];
        // A partial flush window ending at 2.5 s with a huge IWS must
        // not distort max IB.
        samples.push(IwsSample {
            window: 2,
            end_time: SimTime::from_secs_f64(2.5),
            iws_pages: 1_000_000,
            footprint_pages: 1_000_000,
            faults: 0,
            bytes_received: 0,
        });
        let st = IbStats::from_samples(&samples, ts, SimTime::ZERO);
        assert_eq!(st.windows, 2);
        assert!(st.max_mbps < 1.0);
    }

    #[test]
    fn empty_samples_are_safe() {
        let st = IbStats::from_samples(&[], SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(st.windows, 0);
        assert_eq!(st.avg_mbps, 0.0);
    }

    #[test]
    fn series_extraction() {
        let samples = vec![sample(0, 1, 1000, 4000), sample(1, 2, 500, 4000)];
        let iws = iws_series(&samples);
        assert_eq!(iws.len(), 2);
        assert!((iws[0].0 - 1.0).abs() < 1e-12);
        assert!((iws[1].1 - 2.048).abs() < 1e-9);
    }

    #[test]
    fn footprint_stats_max_avg() {
        let samples = vec![sample(0, 1, 0, 1000), sample(1, 2, 0, 3000)];
        let (max, avg) = footprint_stats(&samples);
        assert!((max - 12.288).abs() < 1e-9);
        assert!((avg - 8.192).abs() < 1e-9);
    }

    #[test]
    fn tier_summary_sums_bytes_and_maxes_times() {
        let a = TierUsage {
            local_bytes: 2_000_000,
            local_busy: SimDuration::from_secs(2),
            redundancy_bytes: 2_000_000,
            nic_busy: SimDuration::from_secs(1),
            recovery_local_bytes: 0,
            recovery_net_bytes: 1_000_000,
            recovery_durable_bytes: 0,
            recovery_time: SimDuration::from_secs(3),
        };
        let b = TierUsage {
            local_bytes: 4_000_000,
            local_busy: SimDuration::from_secs(5),
            redundancy_bytes: 4_000_000,
            nic_busy: SimDuration::from_secs_f64(0.5),
            recovery_local_bytes: 500_000,
            recovery_net_bytes: 0,
            recovery_durable_bytes: 250_000,
            recovery_time: SimDuration::ZERO,
        };
        let s = TierSummary::from_usage(&[a, b]);
        assert_eq!(s.ranks, 2);
        assert!((s.local_mb - 6.0).abs() < 1e-9);
        assert!((s.redundancy_mb - 6.0).abs() < 1e-9);
        assert!((s.local_busy_s - 5.0).abs() < 1e-12);
        assert!((s.nic_busy_s - 1.0).abs() < 1e-12);
        assert!((s.recovery_local_mb - 0.5).abs() < 1e-9);
        assert!((s.recovery_net_mb - 1.0).abs() < 1e-9);
        assert!((s.recovery_durable_mb - 0.25).abs() < 1e-9);
        assert!((s.recovery_s - 3.0).abs() < 1e-12);
        assert!((s.recovery_mb() - 1.75).abs() < 1e-9);
        // Partner-style replication: redundancy ≈ 100% of local volume.
        assert!((s.redundancy_overhead_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn tier_summary_empty_is_zero() {
        let s = TierSummary::from_usage(&[]);
        assert_eq!(s, TierSummary::default());
        assert_eq!(s.redundancy_overhead_percent(), 0.0);
    }
}
