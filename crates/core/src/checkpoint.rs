//! Checkpoint capture: full and incremental, serial and parallel.
//!
//! A **full** checkpoint saves every mapped page of the data segment —
//! what a non-incremental OS-level checkpointer must move every
//! interval, and the baseline the paper's feasibility argument is made
//! against. An **incremental** checkpoint saves only the pages dirtied
//! since the previous checkpoint (the accumulated IWS), whose size the
//! paper shows is bounded by a bandwidth far below device limits.
//!
//! Capture is pure: it reads a [`PageSource`] and a list of page ranges
//! and produces an `ickpt-storage` [`Chunk`]. Writing the chunk to
//! stable storage (and charging virtual time for it) is the runner's
//! job, so capture is independently testable.
//!
//! ## The fast path
//!
//! Capture throughput sits on the "available bandwidth" side of the
//! paper's feasibility ratio (§3, §6.3), so the hot loop is engineered:
//!
//! * **Allocation-free in steady state.** [`CaptureScratch`] recycles
//!   page-data buffers, record tables and zero tables between
//!   checkpoints; after warm-up a capture performs no heap allocation.
//! * **Word-scan zero detection.** All-zero pages (fresh allocations)
//!   are detected eight bytes at a time and elided into 16-byte zero
//!   ranges instead of being copied.
//! * **Parallel page copy.** With [`CaptureConfig::workers`] > 1 the
//!   dirty ranges are split into contiguous spans of roughly equal page
//!   count and captured by scoped threads. The merge re-coalesces
//!   records and zero runs across span seams in ascending page order,
//!   so the parallel result is **byte-identical** to the serial one —
//!   manifests, CRCs, digests and restores cannot tell the difference
//!   (property-tested in `tests/checkpoint_props.rs`).

use ickpt_mem::{AddressSpace, PageRange, PageSource};
use ickpt_obs::{CaptureKind, Event, Lane, Recorder};
use ickpt_sim::SimTime;
use ickpt_storage::{Chunk, ChunkKind, PageRecord};

/// Whether a page's content is entirely zero (zero-page elision test).
///
/// Scans machine words, not bytes: a 4 KiB page is 512 u64 compares,
/// and the first nonzero word exits early (application pages are
/// usually nonzero in their first words).
#[inline]
fn is_zero_page(content: &[u8]) -> bool {
    // SAFETY: u64 has no invalid bit patterns; align_to only reinterprets.
    let (head, words, tail) = unsafe { content.align_to::<u64>() };
    words.iter().all(|&w| w == 0) && head.iter().all(|&b| b == 0) && tail.iter().all(|&b| b == 0)
}

/// Tuning for the capture fast path.
#[derive(Debug, Clone)]
pub struct CaptureConfig {
    /// Page-copy worker threads. 1 = serial. The captured chunk is
    /// byte-identical for every worker count.
    pub workers: usize,
    /// Below this many total pages, capture stays serial regardless of
    /// `workers` (thread spawn would cost more than the copy).
    pub parallel_threshold_pages: u64,
    /// Flight recorder; each capture emits one `Event::Capture` on the
    /// rank lane. Disabled by default — a test-and-return on the hot
    /// path (the `obs` micro-bench group measures the delta).
    pub obs: Recorder,
    /// Rank lane the capture events land on.
    pub obs_rank: u32,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        Self { workers: 1, parallel_threshold_pages: 2048, obs: Recorder::disabled(), obs_rank: 0 }
    }
}

impl CaptureConfig {
    /// Serial capture (the default).
    pub fn serial() -> Self {
        Self::default()
    }

    /// Capture with `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers: workers.max(1), ..Self::default() }
    }

    /// Workers from `ICKPT_CAPTURE_WORKERS`, else the machine's
    /// available parallelism (capped at 8 — page copy saturates memory
    /// bandwidth long before core count on wide machines).
    pub fn from_env() -> Self {
        let workers = std::env::var("ICKPT_CAPTURE_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
            });
        Self::with_workers(workers)
    }
}

/// Per-worker output of one capture span, with its recycled buffers.
#[derive(Debug, Default)]
struct WorkerOut {
    records: Vec<PageRecord>,
    zeros: Vec<(u64, u64)>,
    /// Cleared page-data buffers kept warm between checkpoints.
    data_pool: Vec<Vec<u8>>,
}

/// Reusable capture buffers.
///
/// Thread one scratch through repeated `capture_*_with` calls and
/// return each encoded-and-written chunk via [`CaptureScratch::recycle`]
/// to make the steady-state capture loop allocation-free: page-data
/// buffers, record tables and the encode buffer all retain their
/// capacity across generations.
#[derive(Debug, Default)]
pub struct CaptureScratch {
    workers: Vec<WorkerOut>,
    /// Reusable serialization buffer for [`CaptureScratch::encode_reusing`].
    encode_buf: Vec<u8>,
}

impl CaptureScratch {
    /// Empty scratch; buffers warm up over the first capture/recycle
    /// cycle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a finished chunk's allocations to the pools so the next
    /// capture reuses them.
    pub fn recycle(&mut self, chunk: Chunk) {
        if self.workers.is_empty() {
            self.workers.push(WorkerOut::default());
        }
        let n = self.workers.len();
        for (i, rec) in chunk.records.into_iter().enumerate() {
            let mut data = rec.data;
            data.clear();
            self.workers[i % n].data_pool.push(data);
        }
    }

    /// Encode `chunk` into the scratch's retained buffer and return it.
    pub fn encode_reusing(&mut self, chunk: &Chunk) -> &[u8] {
        chunk.encode_into(&mut self.encode_buf);
        &self.encode_buf
    }

    /// Make sure `n` worker slots exist.
    fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            self.workers.push(WorkerOut::default());
        }
    }
}

/// Snapshot the mapping state of `space` for a chunk header: heap size
/// plus live mmap blocks.
fn mapping_state<S: AddressSpace>(space: &S) -> (u64, Vec<(u64, u64)>) {
    let heap_pages = space.heap_pages();
    let mmap_region = space.layout().mmap;
    let mmap_blocks = space
        .mapped_ranges()
        .into_iter()
        .filter(|r| mmap_region.contains(r.start))
        .map(|r| (r.start, r.len))
        .collect();
    (heap_pages, mmap_blocks)
}

/// Build page records for `ranges` from `space` into `out`, coalescing
/// adjacent runs and eliding all-zero pages into the zero table (fresh
/// allocations that were never written cost 16 bytes instead of 4096).
/// Every page must be mapped.
fn build_records_into<S: PageSource>(space: &S, ranges: &[PageRange], out: &mut WorkerOut) {
    for range in ranges {
        for page in range.iter() {
            let content = space
                .read_page(page)
                .unwrap_or_else(|| panic!("checkpoint of unmapped page {page}"));
            if is_zero_page(content) {
                match out.zeros.last_mut() {
                    Some((start, len)) if *start + *len == page => *len += 1,
                    _ => out.zeros.push((page, 1)),
                }
            } else {
                match out.records.last_mut() {
                    Some(last) if last.start_page + last.page_count() == page => {
                        last.data.extend_from_slice(content);
                    }
                    _ => {
                        let mut data = out.data_pool.pop().unwrap_or_default();
                        data.clear();
                        data.extend_from_slice(content);
                        out.records.push(PageRecord { start_page: page, data });
                    }
                }
            }
        }
    }
}

/// Split `ranges` into up to `workers` contiguous spans of roughly
/// equal page count, cutting ranges mid-run where needed. Spans are in
/// ascending page order; concatenating them reproduces `ranges`.
fn split_spans(ranges: &[PageRange], workers: usize) -> Vec<Vec<PageRange>> {
    let total: u64 = ranges.iter().map(|r| r.len).sum();
    if total == 0 || workers <= 1 {
        return vec![ranges.to_vec()];
    }
    let workers = workers.min(total as usize);
    let per = total.div_ceil(workers as u64);
    let mut spans: Vec<Vec<PageRange>> = Vec::with_capacity(workers);
    let mut current: Vec<PageRange> = Vec::new();
    let mut room = per;
    for &r in ranges {
        let mut rest = r;
        while !rest.is_empty() {
            let take = rest.len.min(room);
            current.push(PageRange::new(rest.start, take));
            rest = PageRange::new(rest.start + take, rest.len - take);
            room -= take;
            if room == 0 && spans.len() + 1 < workers {
                spans.push(std::mem::take(&mut current));
                room = per;
            }
        }
    }
    if !current.is_empty() {
        spans.push(current);
    }
    spans
}

/// Merge per-span outputs (ascending page order) into `base`,
/// re-coalescing records and zero runs across span seams so the result
/// is identical to a single serial pass.
fn merge_outputs(base: &mut WorkerOut, parts: &mut [WorkerOut]) {
    for part in parts {
        let mut recs = part.records.drain(..);
        if let Some(first) = recs.next() {
            match base.records.last_mut() {
                Some(last) if last.start_page + last.page_count() == first.start_page => {
                    last.data.extend_from_slice(&first.data);
                    let mut data = first.data;
                    data.clear();
                    base.data_pool.push(data);
                }
                _ => base.records.push(first),
            }
            base.records.extend(recs);
        }
        let mut zeros = part.zeros.drain(..);
        if let Some(first) = zeros.next() {
            match base.zeros.last_mut() {
                Some((s, l)) if *s + *l == first.0 => *l += first.1,
                _ => base.zeros.push(first),
            }
            base.zeros.extend(zeros);
        }
    }
}

/// Capture page records for `ranges`, serial or parallel per `cfg`,
/// returning the record and zero tables.
fn capture_records<S: PageSource + Sync>(
    space: &S,
    ranges: &[PageRange],
    cfg: &CaptureConfig,
    scratch: &mut CaptureScratch,
) -> (Vec<PageRecord>, Vec<(u64, u64)>) {
    let total: u64 = ranges.iter().map(|r| r.len).sum();
    scratch.ensure_workers(1);
    if cfg.workers <= 1 || total < cfg.parallel_threshold_pages {
        let mut out = std::mem::take(&mut scratch.workers[0]);
        build_records_into(space, ranges, &mut out);
        let result = (std::mem::take(&mut out.records), std::mem::take(&mut out.zeros));
        scratch.workers[0] = out;
        return result;
    }

    let spans = split_spans(ranges, cfg.workers);
    scratch.ensure_workers(spans.len());
    // Hand each worker its own recycled buffers; join in span order so
    // the merged output is in ascending page order.
    let mut slots: Vec<WorkerOut> =
        scratch.workers[..spans.len()].iter_mut().map(std::mem::take).collect();
    let mut outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .zip(slots.drain(..))
            .map(|(span, mut out)| {
                scope.spawn(move || {
                    build_records_into(space, span, &mut out);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("capture worker panicked")).collect()
    });
    let (first, rest) = outs.split_at_mut(1);
    merge_outputs(&mut first[0], rest);
    let result = (std::mem::take(&mut outs[0].records), std::mem::take(&mut outs[0].zeros));
    // Give the (now empty) buffers back to the scratch for next time.
    for (slot, out) in scratch.workers.iter_mut().zip(outs) {
        *slot = out;
    }
    result
}

/// Capture a full checkpoint of every mapped page.
pub fn capture_full<S: AddressSpace + PageSource + Sync>(
    space: &S,
    rank: u32,
    generation: u64,
    now: SimTime,
) -> Chunk {
    capture_full_with(
        space,
        rank,
        generation,
        now,
        &CaptureConfig::default(),
        &mut CaptureScratch::new(),
    )
}

/// [`capture_full`] with explicit tuning and reusable buffers.
pub fn capture_full_with<S: AddressSpace + PageSource + Sync>(
    space: &S,
    rank: u32,
    generation: u64,
    now: SimTime,
    cfg: &CaptureConfig,
    scratch: &mut CaptureScratch,
) -> Chunk {
    let (heap_pages, mmap_blocks) = mapping_state(space);
    let ranges = space.mapped_ranges();
    let (records, zero_ranges) = capture_records(space, &ranges, cfg, scratch);
    let chunk = Chunk {
        kind: ChunkKind::Full,
        rank,
        generation,
        parent: None,
        capture_time_ns: now.0,
        heap_pages,
        mmap_blocks,
        zero_ranges,
        records,
        app_state: Vec::new(),
    };
    record_capture(cfg, CaptureKind::Full, now, &chunk);
    chunk
}

/// Emit one `Event::Capture` for a freshly captured chunk.
#[inline]
fn record_capture(cfg: &CaptureConfig, kind: CaptureKind, now: SimTime, chunk: &Chunk) {
    if cfg.obs.is_enabled() {
        cfg.obs.emit(
            Lane::Rank(cfg.obs_rank),
            now,
            Event::Capture {
                kind,
                generation: chunk.generation,
                pages: chunk.payload_pages(),
                payload_bytes: chunk.payload_bytes(),
            },
        );
    }
}

/// Capture an incremental checkpoint of `dirty_ranges` (typically
/// [`crate::tracker::WriteTracker::take_checkpoint_set`], which has
/// already applied memory exclusion) on top of `parent`.
pub fn capture_incremental<S: AddressSpace + PageSource + Sync>(
    space: &S,
    rank: u32,
    generation: u64,
    parent: u64,
    now: SimTime,
    dirty_ranges: &[PageRange],
) -> Chunk {
    capture_incremental_with(
        space,
        rank,
        generation,
        parent,
        now,
        dirty_ranges,
        &CaptureConfig::default(),
        &mut CaptureScratch::new(),
    )
}

/// [`capture_incremental`] with explicit tuning and reusable buffers.
#[allow(clippy::too_many_arguments)]
pub fn capture_incremental_with<S: AddressSpace + PageSource + Sync>(
    space: &S,
    rank: u32,
    generation: u64,
    parent: u64,
    now: SimTime,
    dirty_ranges: &[PageRange],
    cfg: &CaptureConfig,
    scratch: &mut CaptureScratch,
) -> Chunk {
    let (heap_pages, mmap_blocks) = mapping_state(space);
    let (records, zero_ranges) = capture_records(space, dirty_ranges, cfg, scratch);
    let chunk = Chunk {
        kind: ChunkKind::Incremental,
        rank,
        generation,
        parent: Some(parent),
        capture_time_ns: now.0,
        heap_pages,
        mmap_blocks,
        zero_ranges,
        records,
        app_state: Vec::new(),
    };
    record_capture(cfg, CaptureKind::Incremental, now, &chunk);
    chunk
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickpt_mem::{BackedSpace, LayoutBuilder, PAGE_SIZE};

    fn space() -> BackedSpace {
        let layout = LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(8 * PAGE_SIZE)
            .mmap_capacity_bytes(8 * PAGE_SIZE)
            .build();
        let mut s = BackedSpace::new(layout);
        s.heap_grow(2).unwrap();
        s.mmap(3).unwrap();
        for r in s.mapped_ranges() {
            for p in r.iter() {
                s.fill_page(p, p + 1).unwrap();
            }
        }
        s
    }

    #[test]
    fn full_checkpoint_covers_every_mapped_page() {
        let s = space();
        let c = capture_full(&s, 1, 0, SimTime::from_secs(2));
        assert_eq!(c.kind, ChunkKind::Full);
        assert_eq!(c.payload_pages() + c.zero_pages(), s.mapped_pages());
        assert_eq!(c.heap_pages, 2);
        assert_eq!(c.mmap_blocks.len(), 1);
        assert_eq!(c.capture_time_ns, 2_000_000_000);
        // Contents match the space.
        for rec in &c.records {
            for (i, page_bytes) in rec.data.chunks_exact(PAGE_SIZE as usize).enumerate() {
                let page = rec.start_page + i as u64;
                assert_eq!(page_bytes, s.read_page(page).unwrap());
            }
        }
    }

    #[test]
    fn incremental_checkpoint_saves_only_dirty() {
        let s = space();
        let dirty = vec![PageRange::new(0, 2), PageRange::new(4, 1)];
        let c = capture_incremental(&s, 0, 3, 2, SimTime::ZERO, &dirty);
        assert_eq!(c.kind, ChunkKind::Incremental);
        assert_eq!(c.parent, Some(2));
        assert_eq!(c.payload_pages(), 3);
    }

    #[test]
    fn adjacent_dirty_ranges_coalesce_into_one_record() {
        let s = space();
        let dirty = vec![PageRange::new(0, 2), PageRange::new(2, 2)];
        let c = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &dirty);
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].page_count(), 4);
    }

    #[test]
    fn empty_dirty_set_yields_empty_chunk() {
        let s = space();
        let c = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[]);
        assert_eq!(c.payload_bytes(), 0);
        // Still a valid chunk that round-trips.
        let d = Chunk::decode(&c.encode()).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn zero_pages_are_elided_not_stored() {
        let layout = LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(8 * PAGE_SIZE)
            .mmap_capacity_bytes(8 * PAGE_SIZE)
            .build();
        let mut s = BackedSpace::new(layout);
        s.heap_grow(4).unwrap(); // fresh zeroed heap pages 4..8
        s.fill_page(5, 99).unwrap(); // one page written
        let c = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[PageRange::new(4, 4)]);
        assert_eq!(c.payload_pages(), 1, "only the written page is stored");
        assert_eq!(c.zero_pages(), 3, "fresh pages cost 16 bytes each");
        assert_eq!(c.zero_ranges, vec![(4, 1), (6, 2)]);
        // The elision is a pure size optimization: ~4 KB avoided per
        // fresh page.
        assert!(c.encoded_len() < 2 * PAGE_SIZE as usize);
    }

    #[test]
    #[should_panic(expected = "unmapped page")]
    fn checkpointing_unmapped_pages_panics() {
        let s = space();
        // Heap page 6 (layout heap starts at page 4, size 2 mapped) is
        // unmapped.
        let dirty = vec![PageRange::new(6, 1)];
        let _ = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &dirty);
    }

    #[test]
    fn zero_page_word_scan_matches_byte_scan() {
        let mut page = vec![0u8; PAGE_SIZE as usize];
        assert!(is_zero_page(&page));
        for pos in [0usize, 1, 7, 8, 4088, 4095] {
            page[pos] = 1;
            assert!(!is_zero_page(&page), "nonzero byte at {pos} missed");
            page[pos] = 0;
        }
    }

    #[test]
    fn split_spans_partitions_exactly() {
        let ranges = vec![PageRange::new(0, 10), PageRange::new(20, 1), PageRange::new(30, 100)];
        for workers in [1usize, 2, 3, 8, 111, 200] {
            let spans = split_spans(&ranges, workers);
            assert!(spans.len() <= workers.max(1));
            // Flattening the spans reproduces the original page walk.
            let flat: Vec<u64> = spans.iter().flatten().flat_map(|r| r.iter()).collect();
            let want: Vec<u64> = ranges.iter().flat_map(|r| r.iter()).collect();
            assert_eq!(flat, want, "workers={workers}");
            // Balanced: no span more than ceil(total/workers) pages.
            let total: u64 = ranges.iter().map(|r| r.len).sum();
            let per = total.div_ceil(spans.len() as u64);
            for s in &spans[..spans.len() - 1] {
                let n: u64 = s.iter().map(|r| r.len).sum();
                assert!(n <= per + 1, "span of {n} pages vs target {per}");
            }
        }
    }

    #[test]
    fn parallel_capture_is_byte_identical() {
        let layout = LayoutBuilder::new()
            .static_bytes(16 * PAGE_SIZE)
            .heap_capacity_bytes(512 * PAGE_SIZE)
            .mmap_capacity_bytes(128 * PAGE_SIZE)
            .build();
        let mut s = BackedSpace::new(layout);
        s.heap_grow(500).unwrap();
        s.mmap(100).unwrap();
        // A mix of content, zero pages and runs crossing span seams.
        for r in s.mapped_ranges() {
            for p in r.iter() {
                if p % 7 != 0 {
                    s.fill_page(p, p).unwrap();
                }
            }
        }
        let serial = capture_full(&s, 0, 9, SimTime::from_secs(1)).encode();
        for workers in [2usize, 3, 4, 8] {
            let cfg = CaptureConfig { workers, parallel_threshold_pages: 0, ..Default::default() };
            let mut scratch = CaptureScratch::new();
            let par = capture_full_with(&s, 0, 9, SimTime::from_secs(1), &cfg, &mut scratch);
            assert_eq!(par.encode(), serial, "workers={workers}");
        }
    }

    #[test]
    fn scratch_reuse_produces_identical_chunks() {
        let s = space();
        let dirty = vec![PageRange::new(0, 2), PageRange::new(4, 2)];
        let cfg = CaptureConfig::with_workers(2);
        let mut scratch = CaptureScratch::new();
        let mut last: Option<Vec<u8>> = None;
        for _ in 0..3 {
            let c =
                capture_incremental_with(&s, 0, 2, 1, SimTime::ZERO, &dirty, &cfg, &mut scratch);
            let enc = scratch.encode_reusing(&c).to_vec();
            if let Some(prev) = &last {
                assert_eq!(&enc, prev, "recycled buffers changed the output");
            }
            last = Some(enc);
            scratch.recycle(c);
        }
    }
}
