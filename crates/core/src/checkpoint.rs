//! Checkpoint capture: full and incremental, serial and parallel.
//!
//! A **full** checkpoint saves every mapped page of the data segment —
//! what a non-incremental OS-level checkpointer must move every
//! interval, and the baseline the paper's feasibility argument is made
//! against. An **incremental** checkpoint saves only the pages dirtied
//! since the previous checkpoint (the accumulated IWS), whose size the
//! paper shows is bounded by a bandwidth far below device limits.
//!
//! Capture is pure: it reads a [`PageSource`] and a list of page ranges
//! and produces an `ickpt-storage` [`Chunk`]. Writing the chunk to
//! stable storage (and charging virtual time for it) is the runner's
//! job, so capture is independently testable.
//!
//! ## The fast path
//!
//! Capture throughput sits on the "available bandwidth" side of the
//! paper's feasibility ratio (§3, §6.3), so the hot loop is engineered:
//!
//! * **Allocation-free in steady state.** [`CaptureScratch`] recycles
//!   page-data buffers, record tables and zero tables between
//!   checkpoints; after warm-up a capture performs no heap allocation.
//! * **Word-scan zero detection.** All-zero pages (fresh allocations)
//!   are detected eight bytes at a time and elided into 16-byte zero
//!   ranges instead of being copied.
//! * **Parallel page copy.** With [`CaptureConfig::workers`] > 1 the
//!   dirty ranges are split into contiguous spans of roughly equal page
//!   count and captured by scoped threads. The merge re-coalesces
//!   records and zero runs across span seams in ascending page order,
//!   so the parallel result is **byte-identical** to the serial one —
//!   manifests, CRCs, digests and restores cannot tell the difference
//!   (property-tested in `tests/checkpoint_props.rs`).

use ickpt_mem::{AddressSpace, PageRange, PageSource};
use ickpt_obs::{CaptureKind, Event, Lane, Recorder};
use ickpt_sim::SimTime;
use ickpt_storage::hash::{zero_block_hash, BLOCKS_PER_PAGE, BLOCK_SIZE};
use ickpt_storage::{kernels, Chunk, ChunkKind, DeltaRecord, PageRecord, CHUNK_PAGE_SIZE};

/// Whether a page's content is entirely zero (zero-page elision test).
///
/// Routed through the dispatched kernel facade (`ickpt-storage::
/// kernels`): SIMD zero scan with early exit where the CPU has it, the
/// word-at-a-time scan otherwise. When dedup is on, capture does not
/// call this at all — the fused scan answers it as a byproduct of
/// hashing.
#[inline]
fn is_zero_page(content: &[u8]) -> bool {
    kernels::is_zero(content)
}

/// Tuning for the capture fast path.
#[derive(Debug, Clone)]
pub struct CaptureConfig {
    /// Page-copy worker threads. 1 = serial. The captured chunk is
    /// byte-identical for every worker count.
    pub workers: usize,
    /// Below this many total pages, capture stays serial regardless of
    /// `workers` (thread spawn would cost more than the copy).
    pub parallel_threshold_pages: u64,
    /// Flight recorder; each capture emits one `Event::Capture` on the
    /// rank lane. Disabled by default — a test-and-return on the hot
    /// path (the `obs` micro-bench group measures the delta).
    pub obs: Recorder,
    /// Rank lane the capture events land on.
    pub obs_rank: u32,
    /// Content-defined dedup: hash every captured page at sub-page
    /// block granularity against the baseline in
    /// [`CaptureScratch::dedup_index`], dropping silent same-value
    /// writes (dirty pages whose bytes did not change) and
    /// delta-encoding partially-written pages. Off by default; the
    /// captured chunk is byte-identical for every worker count either
    /// way.
    pub dedup: bool,
    /// Delta-encode a changed page only when at most this many of its
    /// [`BLOCKS_PER_PAGE`] blocks changed (the hash-vs-copy crossover
    /// knob). 0 disables delta encoding while keeping silent-same
    /// drops. Only consulted when `dedup` is on.
    pub delta_max_blocks: u32,
}

/// Default delta crossover: a delta pays off while the stored blocks
/// plus the 16-byte record header undercut a whole page; 12 of 16
/// blocks (3 KiB + header vs 4 KiB) keeps a safety margin for the
/// extra base-page read at restore.
pub const DEFAULT_DELTA_MAX_BLOCKS: u32 = 12;

impl Default for CaptureConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            parallel_threshold_pages: 2048,
            obs: Recorder::disabled(),
            obs_rank: 0,
            dedup: false,
            delta_max_blocks: DEFAULT_DELTA_MAX_BLOCKS,
        }
    }
}

impl CaptureConfig {
    /// Serial capture (the default).
    pub fn serial() -> Self {
        Self::default()
    }

    /// Capture with `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers: workers.max(1), ..Self::default() }
    }

    /// Workers from `ICKPT_CAPTURE_WORKERS`, else the machine's
    /// available parallelism (capped at 8 — page copy saturates memory
    /// bandwidth long before core count on wide machines). Dedup from
    /// `ICKPT_DEDUP` (1/true enables) and the delta crossover from
    /// `ICKPT_DELTA_BLOCKS`.
    pub fn from_env() -> Self {
        let workers = std::env::var("ICKPT_CAPTURE_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
            });
        let dedup = std::env::var("ICKPT_DEDUP")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        let delta_max_blocks = std::env::var("ICKPT_DELTA_BLOCKS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_DELTA_MAX_BLOCKS);
        Self { dedup, delta_max_blocks, ..Self::with_workers(workers) }
    }
}

/// Per-capture content-layer accounting: what dedup and delta encoding
/// saved relative to dirty-bit page granularity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ContentStats {
    /// Nonzero dirty pages that were block-hashed.
    pub hashed_pages: u64,
    /// Dirty pages dropped because every block hash matched the
    /// baseline (silent same-value writes).
    pub dropped_pages: u64,
    /// Dirty pages shipped as sub-page deltas.
    pub delta_pages: u64,
    /// Changed blocks stored across those delta records.
    pub delta_blocks: u64,
}

impl ContentStats {
    /// Bytes the dirty-bit accounting would have shipped for the
    /// dropped pages.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_pages * CHUNK_PAGE_SIZE as u64
    }

    /// Bytes saved by delta-encoding instead of whole-page stores
    /// (page payload minus stored blocks and per-record headers).
    pub fn delta_saved_bytes(&self) -> u64 {
        self.delta_pages * CHUNK_PAGE_SIZE as u64
            - (self.delta_blocks * BLOCK_SIZE as u64 + self.delta_pages * 16)
    }

    /// Total bytes the content layer kept off the storage path.
    pub fn saved_bytes(&self) -> u64 {
        self.dropped_bytes() + self.delta_saved_bytes()
    }

    /// Accumulate another capture's stats (run-level totals).
    pub fn merge(&mut self, other: ContentStats) {
        self.hashed_pages += other.hashed_pages;
        self.dropped_pages += other.dropped_pages;
        self.delta_pages += other.delta_pages;
        self.delta_blocks += other.delta_blocks;
    }
}

const DEDUP_VALID: u8 = 1;
const DEDUP_FULL_BASELINE: u8 = 2;

/// Per-rank content baseline: one 64-bit hash per 256-byte block of
/// every tracked page, plus per-page state flags.
///
/// Pre-sized once (to the address-space capacity seen) and then flat —
/// lookups and updates during capture are plain array stores, zero heap
/// allocation in steady state. Flags are byte-granular so parallel
/// capture workers on disjoint page spans write disjoint bytes.
///
/// The baseline reflects *captured* state. Two events force
/// conservative invalidation, both handled by the owner of the index:
/// a restore/rollback (the captured-but-uncommitted suffix is gone —
/// [`DedupIndex::reset`]) and page unmap (a later remap must not match
/// a baseline from a previous mapping epoch —
/// [`DedupIndex::invalidate`], fed by the tracker's churn set). Full
/// captures rebuild the baseline from scratch.
#[derive(Debug, Default)]
pub struct DedupIndex {
    block_hashes: Vec<u64>,
    flags: Vec<u8>,
}

impl DedupIndex {
    /// Grow to track at least `pages` pages (amortized: grows to the
    /// high-water mark and stays).
    pub fn ensure_capacity(&mut self, pages: u64) {
        let need = pages as usize;
        if self.flags.len() < need {
            self.flags.resize(need, 0);
            self.block_hashes.resize(need * BLOCKS_PER_PAGE, 0);
        }
    }

    /// Invalidate every baseline entry (after a restore/rollback: the
    /// chain the baseline described is no longer the chain on disk).
    pub fn reset(&mut self) {
        self.flags.fill(0);
    }

    /// Invalidate the baseline for a page range (pages unmapped since
    /// the last capture: their records may leave the chain, and a
    /// remapped page must never silently match a stale baseline).
    pub fn invalidate(&mut self, range: PageRange) {
        let lo = (range.start as usize).min(self.flags.len());
        let hi = ((range.start + range.len) as usize).min(self.flags.len());
        self.flags[lo..hi].fill(0);
    }

    /// Pages with a valid baseline (diagnostics).
    pub fn valid_pages(&self) -> u64 {
        self.flags.iter().filter(|&&f| f & DEDUP_VALID != 0).count() as u64
    }
}

/// A worker's mutable window into the dedup index: the flag and hash
/// sub-slices covering its page span. Spans are disjoint and ascending,
/// so the windows come from plain `split_at_mut` — no aliasing, no
/// locks, and the per-page decisions match the serial order exactly.
struct DedupWindow<'a> {
    hashes: &'a mut [u64],
    flags: &'a mut [u8],
    /// Absolute page number of element 0 of the slices.
    base_page: u64,
    /// Capture-wide mode: on full captures every page is stored whole
    /// and the baseline is rebuilt (no drops, no deltas).
    refresh_only: bool,
    delta_max_blocks: u32,
    zero_hash: u64,
}

/// Per-worker output of one capture span, with its recycled buffers.
#[derive(Debug, Default)]
struct WorkerOut {
    records: Vec<PageRecord>,
    zeros: Vec<(u64, u64)>,
    deltas: Vec<DeltaRecord>,
    stats: ContentStats,
    /// Cleared page-data buffers kept warm between checkpoints.
    data_pool: Vec<Vec<u8>>,
}

/// Reusable capture buffers.
///
/// Thread one scratch through repeated `capture_*_with` calls and
/// return each encoded-and-written chunk via [`CaptureScratch::recycle`]
/// to make the steady-state capture loop allocation-free: page-data
/// buffers, record tables and the encode buffer all retain their
/// capacity across generations.
#[derive(Debug, Default)]
pub struct CaptureScratch {
    workers: Vec<WorkerOut>,
    /// Reusable serialization buffer for [`CaptureScratch::encode_reusing`].
    encode_buf: Vec<u8>,
    /// Content baseline for dedup captures (unused until
    /// [`CaptureConfig::dedup`] is on).
    dedup_index: DedupIndex,
    /// Content-layer accounting of the most recent capture.
    last_content: ContentStats,
}

impl CaptureScratch {
    /// Empty scratch; buffers warm up over the first capture/recycle
    /// cycle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a finished chunk's allocations to the pools so the next
    /// capture reuses them.
    pub fn recycle(&mut self, chunk: Chunk) {
        if self.workers.is_empty() {
            self.workers.push(WorkerOut::default());
        }
        let n = self.workers.len();
        for (i, rec) in chunk.records.into_iter().enumerate() {
            let mut data = rec.data;
            data.clear();
            self.workers[i % n].data_pool.push(data);
        }
        for (i, delta) in chunk.delta_records.into_iter().enumerate() {
            let mut data = delta.data;
            data.clear();
            self.workers[i % n].data_pool.push(data);
        }
    }

    /// The dedup baseline, for owners that must invalidate it (on
    /// restore/rollback or page churn).
    pub fn dedup_index(&mut self) -> &mut DedupIndex {
        &mut self.dedup_index
    }

    /// Content-layer accounting of the most recent `capture_*_with`
    /// call through this scratch (zeroed when dedup is off).
    pub fn last_content(&self) -> ContentStats {
        self.last_content
    }

    /// Encode `chunk` into the scratch's retained buffer and return it.
    pub fn encode_reusing(&mut self, chunk: &Chunk) -> &[u8] {
        chunk.encode_into(&mut self.encode_buf);
        &self.encode_buf
    }

    /// Make sure `n` worker slots exist.
    fn ensure_workers(&mut self, n: usize) {
        while self.workers.len() < n {
            self.workers.push(WorkerOut::default());
        }
    }
}

/// Snapshot the mapping state of `space` for a chunk header: heap size
/// plus live mmap blocks.
fn mapping_state<S: AddressSpace>(space: &S) -> (u64, Vec<(u64, u64)>) {
    let heap_pages = space.heap_pages();
    let mmap_region = space.layout().mmap;
    let mmap_blocks = space
        .mapped_ranges()
        .into_iter()
        .filter(|r| mmap_region.contains(r.start))
        .map(|r| (r.start, r.len))
        .collect();
    (heap_pages, mmap_blocks)
}

/// Build page records for `ranges` from `space` into `out`, coalescing
/// adjacent runs and eliding all-zero pages into the zero table (fresh
/// allocations that were never written cost 16 bytes instead of 4096).
/// Every page must be mapped.
///
/// With a [`DedupWindow`], every page is additionally block-hashed
/// against the baseline: silent same-value pages are dropped, and
/// partially-written pages below the crossover threshold are
/// delta-encoded. The per-page decision depends only on the page's own
/// content and baseline entry, so parallel workers over disjoint spans
/// reproduce the serial output byte for byte.
fn build_records_into<S: PageSource>(
    space: &S,
    ranges: &[PageRange],
    out: &mut WorkerOut,
    mut dedup: Option<DedupWindow<'_>>,
) {
    let mut fresh = [0u64; BLOCKS_PER_PAGE];
    for range in ranges {
        for page in range.iter() {
            let content = space
                .read_page(page)
                .unwrap_or_else(|| panic!("checkpoint of unmapped page {page}"));
            // One fused sweep per page when the content layer needs
            // hashes anyway (zero probe + page hash + 16 block hashes,
            // each byte touched once); a plain dispatched zero scan
            // with early exit when it does not.
            let page_is_zero = if dedup.is_some() {
                kernels::fused_scan(content, &mut fresh).is_zero
            } else {
                is_zero_page(content)
            };
            if page_is_zero {
                if let Some(ctx) = &mut dedup {
                    let i = (page - ctx.base_page) as usize;
                    let slot = &mut ctx.hashes[i * BLOCKS_PER_PAGE..(i + 1) * BLOCKS_PER_PAGE];
                    if !ctx.refresh_only
                        && ctx.flags[i] & DEDUP_VALID != 0
                        && slot.iter().all(|&h| h == ctx.zero_hash)
                    {
                        // The baseline already stores this page as
                        // zero: the dirty bit was a silent rewrite.
                        out.stats.dropped_pages += 1;
                        continue;
                    }
                    slot.fill(ctx.zero_hash);
                    ctx.flags[i] = DEDUP_VALID | DEDUP_FULL_BASELINE;
                }
                match out.zeros.last_mut() {
                    Some((start, len)) if *start + *len == page => *len += 1,
                    _ => out.zeros.push((page, 1)),
                }
                continue;
            }
            if let Some(ctx) = &mut dedup {
                let i = (page - ctx.base_page) as usize;
                let slot = &mut ctx.hashes[i * BLOCKS_PER_PAGE..(i + 1) * BLOCKS_PER_PAGE];
                // `fresh` was filled by the fused scan above.
                out.stats.hashed_pages += 1;
                if !ctx.refresh_only && ctx.flags[i] & DEDUP_VALID != 0 {
                    if kernels::hashes_eq(&fresh, slot) {
                        out.stats.dropped_pages += 1;
                        continue;
                    }
                    if ctx.flags[i] & DEDUP_FULL_BASELINE != 0 && ctx.delta_max_blocks > 0 {
                        let mut mask = 0u16;
                        for (b, (&new, &old)) in fresh.iter().zip(slot.iter()).enumerate() {
                            if new != old {
                                mask |= 1 << b;
                            }
                        }
                        if mask.count_ones() <= ctx.delta_max_blocks {
                            let mut data = out.data_pool.pop().unwrap_or_default();
                            data.clear();
                            for b in 0..BLOCKS_PER_PAGE {
                                if mask & (1 << b) != 0 {
                                    data.extend_from_slice(
                                        &content[b * BLOCK_SIZE..(b + 1) * BLOCK_SIZE],
                                    );
                                }
                            }
                            out.stats.delta_pages += 1;
                            out.stats.delta_blocks += u64::from(mask.count_ones());
                            out.deltas.push(DeltaRecord { page, mask, data });
                            slot.copy_from_slice(&fresh);
                            // Clear the full-baseline bit: the next
                            // change to this page is stored whole, so a
                            // restore never chases delta onto delta.
                            ctx.flags[i] = DEDUP_VALID;
                            continue;
                        }
                    }
                }
                slot.copy_from_slice(&fresh);
                ctx.flags[i] = DEDUP_VALID | DEDUP_FULL_BASELINE;
            }
            match out.records.last_mut() {
                Some(last) if last.start_page + last.page_count() == page => {
                    last.data.extend_from_slice(content);
                }
                _ => {
                    let mut data = out.data_pool.pop().unwrap_or_default();
                    data.clear();
                    data.extend_from_slice(content);
                    out.records.push(PageRecord { start_page: page, data });
                }
            }
        }
    }
}

/// Split `ranges` into up to `workers` contiguous spans of roughly
/// equal page count, cutting ranges mid-run where needed. Spans are in
/// ascending page order; concatenating them reproduces `ranges`.
fn split_spans(ranges: &[PageRange], workers: usize) -> Vec<Vec<PageRange>> {
    let total: u64 = ranges.iter().map(|r| r.len).sum();
    if total == 0 || workers <= 1 {
        return vec![ranges.to_vec()];
    }
    let workers = workers.min(total as usize);
    let per = total.div_ceil(workers as u64);
    let mut spans: Vec<Vec<PageRange>> = Vec::with_capacity(workers);
    let mut current: Vec<PageRange> = Vec::new();
    let mut room = per;
    for &r in ranges {
        let mut rest = r;
        while !rest.is_empty() {
            let take = rest.len.min(room);
            current.push(PageRange::new(rest.start, take));
            rest = PageRange::new(rest.start + take, rest.len - take);
            room -= take;
            if room == 0 && spans.len() + 1 < workers {
                spans.push(std::mem::take(&mut current));
                room = per;
            }
        }
    }
    if !current.is_empty() {
        spans.push(current);
    }
    spans
}

/// Merge per-span outputs (ascending page order) into `base`,
/// re-coalescing records and zero runs across span seams so the result
/// is identical to a single serial pass.
fn merge_outputs(base: &mut WorkerOut, parts: &mut [WorkerOut]) {
    for part in parts {
        let mut recs = part.records.drain(..);
        if let Some(first) = recs.next() {
            match base.records.last_mut() {
                Some(last) if last.start_page + last.page_count() == first.start_page => {
                    last.data.extend_from_slice(&first.data);
                    let mut data = first.data;
                    data.clear();
                    base.data_pool.push(data);
                }
                _ => base.records.push(first),
            }
            base.records.extend(recs);
        }
        let mut zeros = part.zeros.drain(..);
        if let Some(first) = zeros.next() {
            match base.zeros.last_mut() {
                Some((s, l)) if *s + *l == first.0 => *l += first.1,
                _ => base.zeros.push(first),
            }
            base.zeros.extend(zeros);
        }
        // Delta records are per-page (never coalesced) and spans are
        // ascending, so concatenation preserves page order.
        base.deltas.append(&mut part.deltas);
        base.stats.merge(std::mem::take(&mut part.stats));
    }
}

/// Carve per-span [`DedupWindow`]s out of `index` via successive
/// `split_at_mut` at span boundaries. Spans are disjoint and ascending,
/// so every window gets exclusive, non-overlapping slices.
fn dedup_windows<'a>(
    index: &'a mut DedupIndex,
    spans: &[Vec<PageRange>],
    refresh_only: bool,
    delta_max_blocks: u32,
) -> Vec<Option<DedupWindow<'a>>> {
    let zero_hash = zero_block_hash();
    let mut windows = Vec::with_capacity(spans.len());
    let mut flags: &mut [u8] = &mut index.flags;
    let mut hashes: &mut [u64] = &mut index.block_hashes;
    let mut cursor = 0u64;
    for span in spans {
        let (Some(lo), Some(hi)) =
            (span.first().map(|r| r.start), span.last().map(|r| r.start + r.len))
        else {
            windows.push(None);
            continue;
        };
        let skip = (lo - cursor) as usize;
        let take = (hi - lo) as usize;
        flags = &mut flags[skip..];
        hashes = &mut hashes[skip * BLOCKS_PER_PAGE..];
        let (f, frest) = flags.split_at_mut(take);
        let (h, hrest) = hashes.split_at_mut(take * BLOCKS_PER_PAGE);
        flags = frest;
        hashes = hrest;
        cursor = hi;
        windows.push(Some(DedupWindow {
            hashes: h,
            flags: f,
            base_page: lo,
            refresh_only,
            delta_max_blocks,
            zero_hash,
        }));
    }
    windows
}

/// Capture page records for `ranges`, serial or parallel per `cfg`,
/// returning the record, zero and delta tables. Content-layer
/// accounting lands in `scratch.last_content`.
fn capture_records<S: PageSource + Sync>(
    space: &S,
    ranges: &[PageRange],
    cfg: &CaptureConfig,
    scratch: &mut CaptureScratch,
    refresh_only: bool,
) -> (Vec<PageRecord>, Vec<(u64, u64)>, Vec<DeltaRecord>) {
    let total: u64 = ranges.iter().map(|r| r.len).sum();
    scratch.ensure_workers(1);
    scratch.last_content = ContentStats::default();
    if cfg.dedup {
        if let Some(last) = ranges.last() {
            scratch.dedup_index.ensure_capacity(last.start + last.len);
        }
    }
    if cfg.workers <= 1 || total < cfg.parallel_threshold_pages {
        let mut out = std::mem::take(&mut scratch.workers[0]);
        let window = if cfg.dedup {
            let spans = vec![ranges.to_vec()];
            dedup_windows(&mut scratch.dedup_index, &spans, refresh_only, cfg.delta_max_blocks)
                .pop()
                .unwrap()
        } else {
            None
        };
        build_records_into(space, ranges, &mut out, window);
        let result = (
            std::mem::take(&mut out.records),
            std::mem::take(&mut out.zeros),
            std::mem::take(&mut out.deltas),
        );
        scratch.last_content = std::mem::take(&mut out.stats);
        scratch.workers[0] = out;
        return result;
    }

    let spans = split_spans(ranges, cfg.workers);
    scratch.ensure_workers(spans.len());
    let mut windows: Vec<Option<DedupWindow<'_>>> = if cfg.dedup {
        dedup_windows(&mut scratch.dedup_index, &spans, refresh_only, cfg.delta_max_blocks)
    } else {
        spans.iter().map(|_| None).collect()
    };
    // Hand each worker its own recycled buffers; join in span order so
    // the merged output is in ascending page order.
    let mut slots: Vec<WorkerOut> =
        scratch.workers[..spans.len()].iter_mut().map(std::mem::take).collect();
    let mut outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .iter()
            .zip(slots.drain(..))
            .zip(windows.drain(..))
            .map(|((span, mut out), window)| {
                scope.spawn(move || {
                    build_records_into(space, span, &mut out, window);
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("capture worker panicked")).collect()
    });
    let (first, rest) = outs.split_at_mut(1);
    merge_outputs(&mut first[0], rest);
    let result = (
        std::mem::take(&mut outs[0].records),
        std::mem::take(&mut outs[0].zeros),
        std::mem::take(&mut outs[0].deltas),
    );
    scratch.last_content = std::mem::take(&mut outs[0].stats);
    // Give the (now empty) buffers back to the scratch for next time.
    for (slot, out) in scratch.workers.iter_mut().zip(outs) {
        *slot = out;
    }
    result
}

/// Capture a full checkpoint of every mapped page.
pub fn capture_full<S: AddressSpace + PageSource + Sync>(
    space: &S,
    rank: u32,
    generation: u64,
    now: SimTime,
) -> Chunk {
    capture_full_with(
        space,
        rank,
        generation,
        now,
        &CaptureConfig::default(),
        &mut CaptureScratch::new(),
    )
}

/// [`capture_full`] with explicit tuning and reusable buffers.
pub fn capture_full_with<S: AddressSpace + PageSource + Sync>(
    space: &S,
    rank: u32,
    generation: u64,
    now: SimTime,
    cfg: &CaptureConfig,
    scratch: &mut CaptureScratch,
) -> Chunk {
    let (heap_pages, mmap_blocks) = mapping_state(space);
    let ranges = space.mapped_ranges();
    if cfg.dedup {
        // A full capture stores everything and rebuilds the baseline
        // from scratch; stale entries (e.g. for pages unmapped since
        // the last capture) must not survive into the new chain.
        scratch.dedup_index.reset();
    }
    let (records, zero_ranges, deltas) = capture_records(space, &ranges, cfg, scratch, true);
    debug_assert!(deltas.is_empty(), "full capture never delta-encodes");
    let chunk = Chunk {
        kind: ChunkKind::Full,
        rank,
        generation,
        parent: None,
        capture_time_ns: now.0,
        heap_pages,
        mmap_blocks,
        zero_ranges,
        records,
        delta_records: deltas,
        dropped_pages: 0,
        app_state: Vec::new(),
    };
    record_capture(cfg, CaptureKind::Full, now, &chunk);
    chunk
}

/// Emit one `Event::Capture` for a freshly captured chunk.
#[inline]
fn record_capture(cfg: &CaptureConfig, kind: CaptureKind, now: SimTime, chunk: &Chunk) {
    if cfg.obs.is_enabled() {
        cfg.obs.emit(
            Lane::Rank(cfg.obs_rank),
            now,
            Event::Capture {
                kind,
                generation: chunk.generation,
                pages: chunk.payload_pages(),
                payload_bytes: chunk.payload_bytes(),
            },
        );
    }
}

/// Capture an incremental checkpoint of `dirty_ranges` (typically
/// [`crate::tracker::WriteTracker::take_checkpoint_set`], which has
/// already applied memory exclusion) on top of `parent`.
pub fn capture_incremental<S: AddressSpace + PageSource + Sync>(
    space: &S,
    rank: u32,
    generation: u64,
    parent: u64,
    now: SimTime,
    dirty_ranges: &[PageRange],
) -> Chunk {
    capture_incremental_with(
        space,
        rank,
        generation,
        parent,
        now,
        dirty_ranges,
        &CaptureConfig::default(),
        &mut CaptureScratch::new(),
    )
}

/// [`capture_incremental`] with explicit tuning and reusable buffers.
#[allow(clippy::too_many_arguments)]
pub fn capture_incremental_with<S: AddressSpace + PageSource + Sync>(
    space: &S,
    rank: u32,
    generation: u64,
    parent: u64,
    now: SimTime,
    dirty_ranges: &[PageRange],
    cfg: &CaptureConfig,
    scratch: &mut CaptureScratch,
) -> Chunk {
    let (heap_pages, mmap_blocks) = mapping_state(space);
    let (records, zero_ranges, delta_records) =
        capture_records(space, dirty_ranges, cfg, scratch, false);
    let stats = scratch.last_content;
    let chunk = Chunk {
        kind: ChunkKind::Incremental,
        rank,
        generation,
        parent: Some(parent),
        capture_time_ns: now.0,
        heap_pages,
        mmap_blocks,
        zero_ranges,
        records,
        delta_records,
        dropped_pages: stats.dropped_pages,
        app_state: Vec::new(),
    };
    record_capture(cfg, CaptureKind::Incremental, now, &chunk);
    if cfg.obs.is_enabled() {
        if stats.dropped_pages > 0 {
            cfg.obs.emit(
                Lane::Rank(cfg.obs_rank),
                now,
                Event::DedupSkip {
                    generation,
                    pages: stats.dropped_pages,
                    bytes_saved: stats.dropped_bytes(),
                },
            );
        }
        if stats.delta_pages > 0 {
            cfg.obs.emit(
                Lane::Rank(cfg.obs_rank),
                now,
                Event::DeltaEncode {
                    generation,
                    pages: stats.delta_pages,
                    blocks: stats.delta_blocks,
                    bytes_saved: stats.delta_saved_bytes(),
                },
            );
        }
    }
    chunk
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickpt_mem::{BackedSpace, LayoutBuilder, PageSink, PAGE_SIZE};

    fn space() -> BackedSpace {
        let layout = LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(8 * PAGE_SIZE)
            .mmap_capacity_bytes(8 * PAGE_SIZE)
            .build();
        let mut s = BackedSpace::new(layout);
        s.heap_grow(2).unwrap();
        s.mmap(3).unwrap();
        for r in s.mapped_ranges() {
            for p in r.iter() {
                s.fill_page(p, p + 1).unwrap();
            }
        }
        s
    }

    #[test]
    fn full_checkpoint_covers_every_mapped_page() {
        let s = space();
        let c = capture_full(&s, 1, 0, SimTime::from_secs(2));
        assert_eq!(c.kind, ChunkKind::Full);
        assert_eq!(c.payload_pages() + c.zero_pages(), s.mapped_pages());
        assert_eq!(c.heap_pages, 2);
        assert_eq!(c.mmap_blocks.len(), 1);
        assert_eq!(c.capture_time_ns, 2_000_000_000);
        // Contents match the space.
        for rec in &c.records {
            for (i, page_bytes) in rec.data.chunks_exact(PAGE_SIZE as usize).enumerate() {
                let page = rec.start_page + i as u64;
                assert_eq!(page_bytes, s.read_page(page).unwrap());
            }
        }
    }

    #[test]
    fn incremental_checkpoint_saves_only_dirty() {
        let s = space();
        let dirty = vec![PageRange::new(0, 2), PageRange::new(4, 1)];
        let c = capture_incremental(&s, 0, 3, 2, SimTime::ZERO, &dirty);
        assert_eq!(c.kind, ChunkKind::Incremental);
        assert_eq!(c.parent, Some(2));
        assert_eq!(c.payload_pages(), 3);
    }

    #[test]
    fn adjacent_dirty_ranges_coalesce_into_one_record() {
        let s = space();
        let dirty = vec![PageRange::new(0, 2), PageRange::new(2, 2)];
        let c = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &dirty);
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].page_count(), 4);
    }

    #[test]
    fn empty_dirty_set_yields_empty_chunk() {
        let s = space();
        let c = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[]);
        assert_eq!(c.payload_bytes(), 0);
        // Still a valid chunk that round-trips.
        let d = Chunk::decode(&c.encode()).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn zero_pages_are_elided_not_stored() {
        let layout = LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(8 * PAGE_SIZE)
            .mmap_capacity_bytes(8 * PAGE_SIZE)
            .build();
        let mut s = BackedSpace::new(layout);
        s.heap_grow(4).unwrap(); // fresh zeroed heap pages 4..8
        s.fill_page(5, 99).unwrap(); // one page written
        let c = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[PageRange::new(4, 4)]);
        assert_eq!(c.payload_pages(), 1, "only the written page is stored");
        assert_eq!(c.zero_pages(), 3, "fresh pages cost 16 bytes each");
        assert_eq!(c.zero_ranges, vec![(4, 1), (6, 2)]);
        // The elision is a pure size optimization: ~4 KB avoided per
        // fresh page.
        assert!(c.encoded_len() < 2 * PAGE_SIZE as usize);
    }

    #[test]
    #[should_panic(expected = "unmapped page")]
    fn checkpointing_unmapped_pages_panics() {
        let s = space();
        // Heap page 6 (layout heap starts at page 4, size 2 mapped) is
        // unmapped.
        let dirty = vec![PageRange::new(6, 1)];
        let _ = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &dirty);
    }

    #[test]
    fn zero_page_kernel_scan_matches_byte_scan() {
        let mut page = vec![0u8; PAGE_SIZE as usize];
        assert!(is_zero_page(&page));
        for pos in [0usize, 1, 7, 8, 4088, 4095] {
            page[pos] = 1;
            assert!(!is_zero_page(&page), "nonzero byte at {pos} missed");
            page[pos] = 0;
        }
    }

    #[test]
    fn split_spans_partitions_exactly() {
        let ranges = vec![PageRange::new(0, 10), PageRange::new(20, 1), PageRange::new(30, 100)];
        for workers in [1usize, 2, 3, 8, 111, 200] {
            let spans = split_spans(&ranges, workers);
            assert!(spans.len() <= workers.max(1));
            // Flattening the spans reproduces the original page walk.
            let flat: Vec<u64> = spans.iter().flatten().flat_map(|r| r.iter()).collect();
            let want: Vec<u64> = ranges.iter().flat_map(|r| r.iter()).collect();
            assert_eq!(flat, want, "workers={workers}");
            // Balanced: no span more than ceil(total/workers) pages.
            let total: u64 = ranges.iter().map(|r| r.len).sum();
            let per = total.div_ceil(spans.len() as u64);
            for s in &spans[..spans.len() - 1] {
                let n: u64 = s.iter().map(|r| r.len).sum();
                assert!(n <= per + 1, "span of {n} pages vs target {per}");
            }
        }
    }

    #[test]
    fn parallel_capture_is_byte_identical() {
        let layout = LayoutBuilder::new()
            .static_bytes(16 * PAGE_SIZE)
            .heap_capacity_bytes(512 * PAGE_SIZE)
            .mmap_capacity_bytes(128 * PAGE_SIZE)
            .build();
        let mut s = BackedSpace::new(layout);
        s.heap_grow(500).unwrap();
        s.mmap(100).unwrap();
        // A mix of content, zero pages and runs crossing span seams.
        for r in s.mapped_ranges() {
            for p in r.iter() {
                if p % 7 != 0 {
                    s.fill_page(p, p).unwrap();
                }
            }
        }
        let serial = capture_full(&s, 0, 9, SimTime::from_secs(1)).encode();
        for workers in [2usize, 3, 4, 8] {
            let cfg = CaptureConfig { workers, parallel_threshold_pages: 0, ..Default::default() };
            let mut scratch = CaptureScratch::new();
            let par = capture_full_with(&s, 0, 9, SimTime::from_secs(1), &cfg, &mut scratch);
            assert_eq!(par.encode(), serial, "workers={workers}");
        }
    }

    /// Fill one 256-byte block of a page through the space's raw
    /// page-write API, leaving the rest of the page untouched.
    fn fill_block(s: &mut BackedSpace, page: u64, block: usize, byte: u8) {
        let mut buf = [0u8; PAGE_SIZE as usize];
        buf.copy_from_slice(s.read_page(page).unwrap());
        buf[block * BLOCK_SIZE..(block + 1) * BLOCK_SIZE].fill(byte);
        s.write_page_data(page, &buf).unwrap();
    }

    fn dedup_cfg() -> CaptureConfig {
        CaptureConfig { dedup: true, ..CaptureConfig::default() }
    }

    #[test]
    fn silent_same_pages_are_dropped() {
        let s = space();
        let cfg = dedup_cfg();
        let mut scratch = CaptureScratch::new();
        let full = capture_full_with(&s, 0, 0, SimTime::ZERO, &cfg, &mut scratch);
        assert_eq!(full.dropped_pages, 0);
        assert!(full.delta_records.is_empty(), "full captures never delta-encode");

        // Every mapped page reported dirty, but nothing changed: the
        // whole capture dedups away.
        let dirty = s.mapped_ranges();
        let inc = capture_incremental_with(&s, 0, 1, 0, SimTime::ZERO, &dirty, &cfg, &mut scratch);
        assert_eq!(inc.payload_pages(), 0, "all pages silent-same");
        assert_eq!(inc.zero_pages(), 0);
        assert_eq!(inc.dropped_pages, s.mapped_pages());
        let stats = scratch.last_content();
        assert_eq!(stats.dropped_pages, s.mapped_pages());
        assert_eq!(stats.dropped_bytes(), s.mapped_pages() * PAGE_SIZE);
    }

    #[test]
    fn partial_writes_become_delta_records() {
        let mut s = space();
        let cfg = dedup_cfg();
        let mut scratch = CaptureScratch::new();
        let _full = capture_full_with(&s, 0, 0, SimTime::ZERO, &cfg, &mut scratch);

        // Touch 2 blocks of page 0; rewrite page 1 entirely.
        fill_block(&mut s, 0, 3, 0xAA);
        fill_block(&mut s, 0, 9, 0xBB);
        s.fill_page(1, 0xDEAD).unwrap();
        let dirty = vec![PageRange::new(0, 2)];
        let inc = capture_incremental_with(&s, 0, 1, 0, SimTime::ZERO, &dirty, &cfg, &mut scratch);
        assert_eq!(inc.delta_records.len(), 1);
        assert_eq!(inc.delta_records[0].page, 0);
        assert_eq!(inc.delta_records[0].mask, (1 << 3) | (1 << 9));
        assert_eq!(inc.delta_records[0].data.len(), 2 * BLOCK_SIZE);
        assert_eq!(inc.payload_pages(), 1, "page 1 stored whole");
        let stats = scratch.last_content();
        assert_eq!(stats.delta_pages, 1);
        assert_eq!(stats.delta_blocks, 2);
    }

    #[test]
    fn no_delta_on_delta_alternation() {
        let mut s = space();
        let cfg = dedup_cfg();
        let mut scratch = CaptureScratch::new();
        let _ = capture_full_with(&s, 0, 0, SimTime::ZERO, &cfg, &mut scratch);
        let dirty = vec![PageRange::new(0, 1)];

        fill_block(&mut s, 0, 1, 0x11);
        let g1 = capture_incremental_with(&s, 0, 1, 0, SimTime::ZERO, &dirty, &cfg, &mut scratch);
        assert_eq!(g1.delta_records.len(), 1, "first partial write delta-encodes");

        // Second partial write to the same page: the baseline is no
        // longer a whole stored page, so the page ships whole again.
        fill_block(&mut s, 0, 2, 0x22);
        let g2 = capture_incremental_with(&s, 0, 2, 1, SimTime::ZERO, &dirty, &cfg, &mut scratch);
        assert!(g2.delta_records.is_empty(), "no delta chained on a delta");
        assert_eq!(g2.payload_pages(), 1);

        // And now the baseline is whole again: a third partial write
        // may delta-encode once more.
        fill_block(&mut s, 0, 4, 0x33);
        let g3 = capture_incremental_with(&s, 0, 3, 2, SimTime::ZERO, &dirty, &cfg, &mut scratch);
        assert_eq!(g3.delta_records.len(), 1);
    }

    #[test]
    fn delta_crossover_threshold_is_respected() {
        let mut s = space();
        let cfg = dedup_cfg();
        let mut scratch = CaptureScratch::new();
        let _ = capture_full_with(&s, 0, 0, SimTime::ZERO, &cfg, &mut scratch);
        // Touch more blocks than the crossover allows: stored whole.
        for b in 0..(DEFAULT_DELTA_MAX_BLOCKS + 1) as usize {
            fill_block(&mut s, 0, b, 0x55);
        }
        let dirty = vec![PageRange::new(0, 1)];
        let inc = capture_incremental_with(&s, 0, 1, 0, SimTime::ZERO, &dirty, &cfg, &mut scratch);
        assert!(inc.delta_records.is_empty(), "past the crossover the page ships whole");
        assert_eq!(inc.payload_pages(), 1);
    }

    #[test]
    fn zero_page_baseline_participates_in_dedup() {
        let layout = LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(8 * PAGE_SIZE)
            .mmap_capacity_bytes(8 * PAGE_SIZE)
            .build();
        let mut s = BackedSpace::new(layout);
        s.heap_grow(2).unwrap();
        // Pages stay zero through the full capture.
        let cfg = dedup_cfg();
        let mut scratch = CaptureScratch::new();
        let _ = capture_full_with(&s, 0, 0, SimTime::ZERO, &cfg, &mut scratch);

        // Dirty-but-still-zero pages drop; a zero→nonzero→zero page is
        // re-recorded as zero only when its baseline says otherwise.
        let dirty = s.mapped_ranges();
        let inc = capture_incremental_with(&s, 0, 1, 0, SimTime::ZERO, &dirty, &cfg, &mut scratch);
        assert_eq!(inc.zero_pages(), 0, "silently-rewritten zero pages drop too");
        assert_eq!(inc.dropped_pages, s.mapped_pages());

        s.fill_page(4, 7).unwrap();
        let g2 = capture_incremental_with(
            &s,
            0,
            2,
            1,
            SimTime::ZERO,
            &[PageRange::new(4, 1)],
            &cfg,
            &mut scratch,
        );
        // Nonzero content over a zero baseline: below the crossover it
        // delta-encodes against the zero page.
        assert!(g2.payload_pages() == 1 || g2.delta_pages() == 1);
        s.write_page_data(4, &[0u8; PAGE_SIZE as usize]).unwrap();
        let g3 = capture_incremental_with(
            &s,
            0,
            3,
            2,
            SimTime::ZERO,
            &[PageRange::new(4, 1)],
            &cfg,
            &mut scratch,
        );
        assert_eq!(g3.zero_pages(), 1, "back-to-zero re-records the zero range");
        assert_eq!(g3.dropped_pages, 0);
    }

    #[test]
    fn parallel_dedup_capture_is_byte_identical() {
        let layout = LayoutBuilder::new()
            .static_bytes(16 * PAGE_SIZE)
            .heap_capacity_bytes(512 * PAGE_SIZE)
            .mmap_capacity_bytes(128 * PAGE_SIZE)
            .build();
        let mut s = BackedSpace::new(layout);
        s.heap_grow(500).unwrap();
        s.mmap(100).unwrap();
        for r in s.mapped_ranges() {
            for p in r.iter() {
                if p % 7 != 0 {
                    s.fill_page(p, p).unwrap();
                }
            }
        }
        let dirty = s.mapped_ranges();

        // Serial reference: full, then a mixed silent-same / partial /
        // rewrite / zero increment.
        let make_increment = |s: &mut BackedSpace| {
            for r in s.mapped_ranges() {
                for p in r.iter() {
                    match p % 5 {
                        0 => {}                                                         // silent-same
                        1 => fill_block(s, p, (p % 16) as usize, 0x7F),                 // partial
                        2 => s.fill_page(p, p * 31 + 1).unwrap(),                       // rewrite
                        3 => s.write_page_data(p, &[0u8; PAGE_SIZE as usize]).unwrap(), // zeroed
                        _ => {}
                    }
                }
            }
        };

        let mut serial_enc = None;
        for workers in [1usize, 2, 3, 8] {
            let cfg = CaptureConfig {
                workers,
                parallel_threshold_pages: 0,
                dedup: true,
                ..Default::default()
            };
            let mut scratch = CaptureScratch::new();
            let mut sc = s.clone();
            let full = capture_full_with(&sc, 0, 0, SimTime::ZERO, &cfg, &mut scratch);
            make_increment(&mut sc);
            let inc =
                capture_incremental_with(&sc, 0, 1, 0, SimTime::ZERO, &dirty, &cfg, &mut scratch);
            let enc = (full.encode(), inc.encode());
            match &serial_enc {
                None => serial_enc = Some(enc),
                Some(want) => assert_eq!(&enc, want, "workers={workers}"),
            }
        }
    }

    #[test]
    fn dedup_index_reset_and_invalidate_disable_drops() {
        let s = space();
        let cfg = dedup_cfg();
        let mut scratch = CaptureScratch::new();
        let _ = capture_full_with(&s, 0, 0, SimTime::ZERO, &cfg, &mut scratch);
        assert_eq!(scratch.dedup_index().valid_pages(), s.mapped_pages());

        // Invalidate a range: those pages store whole again even though
        // their bytes are unchanged.
        scratch.dedup_index().invalidate(PageRange::new(0, 2));
        let dirty = vec![PageRange::new(0, 3)];
        let inc = capture_incremental_with(&s, 0, 1, 0, SimTime::ZERO, &dirty, &cfg, &mut scratch);
        assert_eq!(inc.payload_pages(), 2, "invalidated pages re-store");
        assert_eq!(inc.dropped_pages, 1, "still-valid page drops");

        scratch.dedup_index().reset();
        assert_eq!(scratch.dedup_index().valid_pages(), 0);
    }

    #[test]
    fn scratch_reuse_produces_identical_chunks() {
        let s = space();
        let dirty = vec![PageRange::new(0, 2), PageRange::new(4, 2)];
        let cfg = CaptureConfig::with_workers(2);
        let mut scratch = CaptureScratch::new();
        let mut last: Option<Vec<u8>> = None;
        for _ in 0..3 {
            let c =
                capture_incremental_with(&s, 0, 2, 1, SimTime::ZERO, &dirty, &cfg, &mut scratch);
            let enc = scratch.encode_reusing(&c).to_vec();
            if let Some(prev) = &last {
                assert_eq!(&enc, prev, "recycled buffers changed the output");
            }
            last = Some(enc);
            scratch.recycle(c);
        }
    }
}
