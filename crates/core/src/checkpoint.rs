//! Checkpoint capture: full and incremental.
//!
//! A **full** checkpoint saves every mapped page of the data segment —
//! what a non-incremental OS-level checkpointer must move every
//! interval, and the baseline the paper's feasibility argument is made
//! against. An **incremental** checkpoint saves only the pages dirtied
//! since the previous checkpoint (the accumulated IWS), whose size the
//! paper shows is bounded by a bandwidth far below device limits.
//!
//! Capture is pure: it reads a [`PageSource`] and a list of page ranges
//! and produces an `ickpt-storage` [`Chunk`]. Writing the chunk to
//! stable storage (and charging virtual time for it) is the runner's
//! job, so capture is independently testable.

use ickpt_mem::{AddressSpace, PageRange, PageSource};
use ickpt_sim::SimTime;
use ickpt_storage::{Chunk, ChunkKind, PageRecord};

/// Whether a page's content is entirely zero (zero-page elision test).
#[inline]
fn is_zero_page(content: &[u8]) -> bool {
    // Word-at-a-time scan; pages are 4096 bytes, 8-aligned slices.
    content.chunks_exact(8).all(|w| w == [0u8; 8])
}

/// Snapshot the mapping state of `space` for a chunk header: heap size
/// plus live mmap blocks.
fn mapping_state<S: AddressSpace>(space: &S) -> (u64, Vec<(u64, u64)>) {
    let heap_pages = space.heap_pages();
    let mmap_region = space.layout().mmap;
    let mmap_blocks = space
        .mapped_ranges()
        .into_iter()
        .filter(|r| mmap_region.contains(r.start))
        .map(|r| (r.start, r.len))
        .collect();
    (heap_pages, mmap_blocks)
}

/// Build page records for `ranges` from `space`, coalescing adjacent
/// runs and eliding all-zero pages into the returned zero-range table
/// (fresh allocations that were never written cost 16 bytes instead of
/// 4096). Every page must be mapped.
fn build_records<S: PageSource>(
    space: &S,
    ranges: &[PageRange],
) -> (Vec<PageRecord>, Vec<(u64, u64)>) {
    let mut records: Vec<PageRecord> = Vec::with_capacity(ranges.len());
    let mut zeros: Vec<(u64, u64)> = Vec::new();
    let mut push_zero = |page: u64| match zeros.last_mut() {
        Some((start, len)) if *start + *len == page => *len += 1,
        _ => zeros.push((page, 1)),
    };
    let mut push_content = |page: u64, content: &[u8]| match records.last_mut() {
        Some(last) if last.start_page + last.page_count() == page => {
            last.data.extend_from_slice(content);
        }
        _ => records.push(PageRecord { start_page: page, data: content.to_vec() }),
    };
    for range in ranges {
        for page in range.iter() {
            let content = space
                .read_page(page)
                .unwrap_or_else(|| panic!("checkpoint of unmapped page {page}"));
            if is_zero_page(content) {
                push_zero(page);
            } else {
                push_content(page, content);
            }
        }
    }
    (records, zeros)
}

/// Capture a full checkpoint of every mapped page.
pub fn capture_full<S: AddressSpace + PageSource>(
    space: &S,
    rank: u32,
    generation: u64,
    now: SimTime,
) -> Chunk {
    let (heap_pages, mmap_blocks) = mapping_state(space);
    let ranges = space.mapped_ranges();
    let (records, zero_ranges) = build_records(space, &ranges);
    Chunk {
        kind: ChunkKind::Full,
        rank,
        generation,
        parent: None,
        capture_time_ns: now.0,
        heap_pages,
        mmap_blocks,
        zero_ranges,
        records,
        app_state: Vec::new(),
    }
}

/// Capture an incremental checkpoint of `dirty_ranges` (typically
/// [`crate::tracker::WriteTracker::take_checkpoint_set`], which has
/// already applied memory exclusion) on top of `parent`.
pub fn capture_incremental<S: AddressSpace + PageSource>(
    space: &S,
    rank: u32,
    generation: u64,
    parent: u64,
    now: SimTime,
    dirty_ranges: &[PageRange],
) -> Chunk {
    let (heap_pages, mmap_blocks) = mapping_state(space);
    let (records, zero_ranges) = build_records(space, dirty_ranges);
    Chunk {
        kind: ChunkKind::Incremental,
        rank,
        generation,
        parent: Some(parent),
        capture_time_ns: now.0,
        heap_pages,
        mmap_blocks,
        zero_ranges,
        records,
        app_state: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickpt_mem::{BackedSpace, LayoutBuilder, PAGE_SIZE};

    fn space() -> BackedSpace {
        let layout = LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(8 * PAGE_SIZE)
            .mmap_capacity_bytes(8 * PAGE_SIZE)
            .build();
        let mut s = BackedSpace::new(layout);
        s.heap_grow(2).unwrap();
        s.mmap(3).unwrap();
        for r in s.mapped_ranges() {
            for p in r.iter() {
                s.fill_page(p, p + 1).unwrap();
            }
        }
        s
    }

    #[test]
    fn full_checkpoint_covers_every_mapped_page() {
        let s = space();
        let c = capture_full(&s, 1, 0, SimTime::from_secs(2));
        assert_eq!(c.kind, ChunkKind::Full);
        assert_eq!(c.payload_pages() + c.zero_pages(), s.mapped_pages());
        assert_eq!(c.heap_pages, 2);
        assert_eq!(c.mmap_blocks.len(), 1);
        assert_eq!(c.capture_time_ns, 2_000_000_000);
        // Contents match the space.
        for rec in &c.records {
            for (i, page_bytes) in rec.data.chunks_exact(PAGE_SIZE as usize).enumerate() {
                let page = rec.start_page + i as u64;
                assert_eq!(page_bytes, s.read_page(page).unwrap());
            }
        }
    }

    #[test]
    fn incremental_checkpoint_saves_only_dirty() {
        let s = space();
        let dirty = vec![PageRange::new(0, 2), PageRange::new(4, 1)];
        let c = capture_incremental(&s, 0, 3, 2, SimTime::ZERO, &dirty);
        assert_eq!(c.kind, ChunkKind::Incremental);
        assert_eq!(c.parent, Some(2));
        assert_eq!(c.payload_pages(), 3);
    }

    #[test]
    fn adjacent_dirty_ranges_coalesce_into_one_record() {
        let s = space();
        let dirty = vec![PageRange::new(0, 2), PageRange::new(2, 2)];
        let c = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &dirty);
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].page_count(), 4);
    }

    #[test]
    fn empty_dirty_set_yields_empty_chunk() {
        let s = space();
        let c = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[]);
        assert_eq!(c.payload_bytes(), 0);
        // Still a valid chunk that round-trips.
        let d = Chunk::decode(&c.encode()).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn zero_pages_are_elided_not_stored() {
        let layout = LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(8 * PAGE_SIZE)
            .mmap_capacity_bytes(8 * PAGE_SIZE)
            .build();
        let mut s = BackedSpace::new(layout);
        s.heap_grow(4).unwrap(); // fresh zeroed heap pages 4..8
        s.fill_page(5, 99).unwrap(); // one page written
        let c = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &[PageRange::new(4, 4)]);
        assert_eq!(c.payload_pages(), 1, "only the written page is stored");
        assert_eq!(c.zero_pages(), 3, "fresh pages cost 16 bytes each");
        assert_eq!(c.zero_ranges, vec![(4, 1), (6, 2)]);
        // The elision is a pure size optimization: ~4 KB avoided per
        // fresh page.
        assert!(c.encoded_len() < 2 * PAGE_SIZE as usize);
    }

    #[test]
    #[should_panic(expected = "unmapped page")]
    fn checkpointing_unmapped_pages_panics() {
        let s = space();
        // Heap page 6 (layout heap starts at page 4, size 2 mapped) is
        // unmapped.
        let dirty = vec![PageRange::new(6, 1)];
        let _ = capture_incremental(&s, 0, 1, 0, SimTime::ZERO, &dirty);
    }
}
