//! Coupling an address space to a write tracker.
//!
//! The paper's library intercepts `mmap`/`munmap` (and watches the
//! break) so it always knows the *current* memory size and can exclude
//! unmapped pages (§4.1–4.2). [`TrackedSpace`] is that interception
//! layer: it forwards every mapping operation to the underlying space
//! and notifies the tracker, so footprint accounting and memory
//! exclusion can never drift from the mapping state.
//!
//! [`ContentWrite`] abstracts "actually write bytes": on a
//! [`SparseSpace`] it is a no-op (characterization needs only
//! metadata), on a [`BackedSpace`] it fills the touched pages with
//! deterministic content so checkpoint/restore correctness is
//! end-to-end checkable.

use ickpt_mem::{AddressSpace, BackedSpace, DataLayout, MemError, PageRange, SparseSpace};

use crate::tracker::WriteTracker;

/// Write deterministic content for a touched page range.
pub trait ContentWrite {
    /// Record that all pages of `range` were written at logical write
    /// version `version` (monotonic per rank).
    fn write_content(&mut self, range: PageRange, version: u64);
}

impl ContentWrite for SparseSpace {
    #[inline]
    fn write_content(&mut self, _range: PageRange, _version: u64) {}
}

impl ContentWrite for BackedSpace {
    fn write_content(&mut self, range: PageRange, version: u64) {
        for page in range.iter() {
            // Unmapped pages cannot be touched through TrackedSpace, so
            // this only fails on internal inconsistency.
            self.write_versioned(page, version).expect("touch of unmapped page");
        }
    }
}

/// An address space whose mapping changes and writes feed a tracker.
pub struct TrackedSpace<'a, S: AddressSpace + ContentWrite> {
    space: &'a mut S,
    tracker: &'a mut WriteTracker,
}

impl<'a, S: AddressSpace + ContentWrite> TrackedSpace<'a, S> {
    /// Couple `space` and `tracker`. The tracker's footprint must
    /// already equal the space's mapped page count.
    pub fn new(space: &'a mut S, tracker: &'a mut WriteTracker) -> Self {
        debug_assert_eq!(space.mapped_pages(), tracker.footprint_pages());
        Self { space, tracker }
    }

    /// Write every page of `range`, going through the fault path:
    /// returns the number of page faults taken. `version` derives the
    /// written contents; the runner passes the current iteration index
    /// so a recovered run rewrites byte-identical data (determinism
    /// across rollback).
    pub fn touch(&mut self, range: PageRange, version: u64) -> u64 {
        debug_assert!(
            range.iter().all(|p| self.space.is_mapped(p)),
            "touch of unmapped range {range:?}"
        );
        self.space.write_content(range, version);
        self.tracker.touch_range(range)
    }

    /// The underlying space (read-only).
    pub fn space(&self) -> &S {
        self.space
    }

    /// The tracker (read-only).
    pub fn tracker(&self) -> &WriteTracker {
        self.tracker
    }

    /// The tracker (mutable, for sampling control by the engine).
    pub fn tracker_mut(&mut self) -> &mut WriteTracker {
        self.tracker
    }
}

impl<S: AddressSpace + ContentWrite> AddressSpace for TrackedSpace<'_, S> {
    fn layout(&self) -> &DataLayout {
        self.space.layout()
    }

    fn is_mapped(&self, page: u64) -> bool {
        self.space.is_mapped(page)
    }

    fn mapped_pages(&self) -> u64 {
        self.space.mapped_pages()
    }

    fn mapped_ranges(&self) -> Vec<PageRange> {
        self.space.mapped_ranges()
    }

    fn heap_grow(&mut self, pages: u64) -> Result<PageRange, MemError> {
        let r = self.space.heap_grow(pages)?;
        self.tracker.on_map(r);
        Ok(r)
    }

    fn heap_shrink(&mut self, pages: u64) -> Result<PageRange, MemError> {
        let r = self.space.heap_shrink(pages)?;
        self.tracker.on_unmap(r);
        Ok(r)
    }

    fn heap_pages(&self) -> u64 {
        self.space.heap_pages()
    }

    fn mmap(&mut self, pages: u64) -> Result<PageRange, MemError> {
        let r = self.space.mmap(pages)?;
        self.tracker.on_map(r);
        Ok(r)
    }

    fn munmap(&mut self, range: PageRange) -> Result<(), MemError> {
        self.space.munmap(range)?;
        self.tracker.on_unmap(range);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::TrackerConfig;
    use ickpt_mem::{LayoutBuilder, PAGE_SIZE};
    use ickpt_sim::SimTime;

    fn layout() -> DataLayout {
        LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(16 * PAGE_SIZE)
            .mmap_capacity_bytes(16 * PAGE_SIZE)
            .build()
    }

    fn tracker_for(space: &impl AddressSpace) -> WriteTracker {
        WriteTracker::new(
            space.layout().capacity_pages(),
            space.mapped_pages(),
            TrackerConfig::default(),
        )
    }

    #[test]
    fn mapping_ops_update_tracker_footprint() {
        let mut space = SparseSpace::new(layout());
        let mut tracker = tracker_for(&space);
        let mut ts = TrackedSpace::new(&mut space, &mut tracker);
        ts.heap_grow(3).unwrap();
        let m = ts.mmap(5).unwrap();
        assert_eq!(ts.tracker().footprint_pages(), 4 + 3 + 5);
        ts.munmap(m).unwrap();
        ts.heap_shrink(1).unwrap();
        assert_eq!(ts.tracker().footprint_pages(), 6);
        assert_eq!(ts.mapped_pages(), 6);
    }

    #[test]
    fn touches_fault_and_dirty() {
        let mut space = SparseSpace::new(layout());
        let mut tracker = tracker_for(&space);
        let mut ts = TrackedSpace::new(&mut space, &mut tracker);
        assert_eq!(ts.touch(PageRange::new(0, 4), 1), 4);
        assert_eq!(ts.touch(PageRange::new(0, 4), 1), 0);
        ts.tracker_mut().advance_to(SimTime::from_secs(1));
        assert_eq!(ts.tracker().samples()[0].iws_pages, 4);
    }

    #[test]
    fn backed_touch_writes_content() {
        let mut space = BackedSpace::new(layout());
        let before = ickpt_mem::space::PageSource::read_page(&space, 0).unwrap().to_vec();
        let mut tracker = tracker_for(&space);
        let mut ts = TrackedSpace::new(&mut space, &mut tracker);
        ts.touch(PageRange::new(0, 1), 1);
        let after = ickpt_mem::space::PageSource::read_page(&space, 0).unwrap();
        assert_ne!(before.as_slice(), after, "touch must change backed content");
    }

    #[test]
    fn backed_touches_are_version_dependent() {
        let mut space = BackedSpace::new(layout());
        let mut tracker = tracker_for(&space);
        let mut ts = TrackedSpace::new(&mut space, &mut tracker);
        ts.touch(PageRange::new(0, 1), 1);
        let v1 = ickpt_mem::space::PageSource::read_page(ts.space(), 0).unwrap().to_vec();
        ts.touch(PageRange::new(0, 1), 2);
        let v2 = ickpt_mem::space::PageSource::read_page(ts.space(), 0).unwrap();
        assert_ne!(v1.as_slice(), v2, "subsequent writes produce new content");
    }

    #[test]
    fn unmap_then_alarm_excludes_pages() {
        let mut space = SparseSpace::new(layout());
        let mut tracker = tracker_for(&space);
        let mut ts = TrackedSpace::new(&mut space, &mut tracker);
        let m = ts.mmap(4).unwrap();
        ts.touch(m, 1);
        ts.munmap(m).unwrap();
        ts.tracker_mut().advance_to(SimTime::from_secs(1));
        assert_eq!(ts.tracker().samples()[0].iws_pages, 0);
    }
}
