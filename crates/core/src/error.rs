//! Error type for checkpoint/restore operations.

use std::fmt;

use ickpt_mem::MemError;
use ickpt_storage::StorageError;

/// Errors from the checkpointing core.
#[derive(Debug)]
pub enum CoreError {
    /// Underlying storage failed.
    Storage(StorageError),
    /// Underlying memory operation failed.
    Mem(MemError),
    /// No committed checkpoint exists to recover from.
    NoCheckpoint,
    /// A chunk chain is broken (missing parent generation).
    BrokenChain { rank: u32, missing_generation: u64 },
    /// Chunk belongs to a different rank than requested.
    RankMismatch { expected: u32, found: u32 },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Mem(e) => write!(f, "memory: {e}"),
            CoreError::NoCheckpoint => write!(f, "no committed checkpoint available"),
            CoreError::BrokenChain { rank, missing_generation } => {
                write!(f, "broken chain for rank {rank}: missing generation {missing_generation}")
            }
            CoreError::RankMismatch { expected, found } => {
                write!(f, "chunk rank mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<MemError> for CoreError {
    fn from(e: MemError) -> Self {
        CoreError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::NoCheckpoint.to_string().contains("no committed"));
        let e = CoreError::BrokenChain { rank: 2, missing_generation: 9 };
        assert!(e.to_string().contains("rank 2") && e.to_string().contains("9"));
    }
}
