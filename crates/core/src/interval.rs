//! Checkpoint-interval optimization: Young's and Daly's formulas.
//!
//! The paper's motivation (§1) is a 65,536-processor BlueGene/L
//! "expected to experience failures every few hours", demanding
//! checkpoints "every few minutes". How often exactly is a classic
//! result: given a per-checkpoint cost `C` and a system mean time
//! between failures `M`, Young's first-order optimum is
//! `T_opt = sqrt(2·C·M)`, refined by Daly for restart cost `R`.
//! This module turns the paper's measured bandwidth requirements into
//! concrete deployment guidance: from an application's incremental
//! checkpoint size and a device bandwidth we get `C`, and from `C` and
//! the failure rate the optimal interval and the machine *efficiency*
//! (useful fraction of wall time) an operator can expect.

use ickpt_sim::SimDuration;

/// Inputs of the interval optimization.
///
/// ```
/// use ickpt_core::interval::IntervalModel;
/// use ickpt_sim::SimDuration;
///
/// // A 413 MB incremental checkpoint over a 320 MB/s disk, on a
/// // machine failing hourly (the paper's §1 projection):
/// let m = IntervalModel::from_bandwidth(
///     413_000_000, 320_000_000, SimDuration::from_secs(3600));
/// let t = m.young_interval();
/// assert!(t.as_secs_f64() > 60.0 && t.as_secs_f64() < 120.0);
/// assert!(m.optimal_efficiency() > 0.95);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IntervalModel {
    /// Time to write one checkpoint to stable storage.
    pub checkpoint_cost: SimDuration,
    /// Time to restart from a checkpoint (restore + warm-up).
    pub restart_cost: SimDuration,
    /// System mean time between failures.
    pub mtbf: SimDuration,
}

impl IntervalModel {
    /// Build from the paper's quantities: an incremental checkpoint of
    /// `checkpoint_bytes` over a `bandwidth` (bytes/s) path, with the
    /// restart reading the same data back.
    pub fn from_bandwidth(checkpoint_bytes: u64, bandwidth: u64, mtbf: SimDuration) -> Self {
        let cost = SimDuration::for_transfer(checkpoint_bytes, bandwidth);
        Self { checkpoint_cost: cost, restart_cost: cost, mtbf }
    }

    /// Young's first-order optimal interval: `sqrt(2 C M)`.
    pub fn young_interval(&self) -> SimDuration {
        let c = self.checkpoint_cost.as_secs_f64();
        let m = self.mtbf.as_secs_f64();
        SimDuration::from_secs_f64((2.0 * c * m).sqrt())
    }

    /// Daly's higher-order optimum (valid for `C < 2M`):
    /// `sqrt(2 C M) · [1 + 1/3·sqrt(C/(2M)) + (1/9)·(C/(2M))] - C`.
    pub fn daly_interval(&self) -> SimDuration {
        let c = self.checkpoint_cost.as_secs_f64();
        let m = self.mtbf.as_secs_f64();
        if c >= 2.0 * m {
            // Degenerate regime: checkpointing costs more than the
            // expected uptime; checkpoint continuously.
            return self.mtbf;
        }
        let x = (c / (2.0 * m)).sqrt();
        let t = (2.0 * c * m).sqrt() * (1.0 + x / 3.0 + x * x / 9.0) - c;
        SimDuration::from_secs_f64(t.max(c))
    }

    /// Expected machine efficiency (useful work / wall time) when
    /// checkpointing every `interval`, using the standard
    /// expected-waste formulation: per cycle of length `T + C`, the
    /// checkpoint wastes `C`, and a failure — probability `(T+C)/M`
    /// per cycle, uniformly arriving — wastes on average
    /// `(T+C)/2 + R` of rework and restart:
    ///
    /// `E = (T − ((T+C)/M)·((T+C)/2 + R)) / (T + C)`.
    pub fn efficiency(&self, interval: SimDuration) -> f64 {
        let t = interval.as_secs_f64();
        let c = self.checkpoint_cost.as_secs_f64();
        let r = self.restart_cost.as_secs_f64();
        let m = self.mtbf.as_secs_f64();
        let cycle = t + c;
        let waste_fail = (cycle / m) * (cycle / 2.0 + r);
        ((t - waste_fail) / cycle).clamp(0.0, 1.0)
    }

    /// Efficiency at Young's optimum.
    pub fn optimal_efficiency(&self) -> f64 {
        self.efficiency(self.young_interval())
    }
}

/// One level of a multilevel checkpointing hierarchy.
///
/// Level `i` writes checkpoints of cost `C_i` and absorbs the failure
/// class it is provisioned for (rate `λ_i`, failures per second): the
/// node-local tier handles process crashes, partner/XOR redundancy
/// handles single-node losses, and the shared array handles anything
/// that takes the redundancy group down with it.
#[derive(Debug, Clone, Copy)]
pub struct TierLevel {
    /// Time to complete one checkpoint at this level.
    pub checkpoint_cost: SimDuration,
    /// Time to restart from this level's most recent checkpoint.
    pub restart_cost: SimDuration,
    /// Rate of failures this level must recover from (per second).
    /// Must be positive: a tier nobody fails to is not a tier.
    pub failure_rate: f64,
}

impl TierLevel {
    /// Young's first-order optimal interval for this level alone:
    /// `T_i = sqrt(2·C_i / λ_i)`.
    pub fn young_interval(&self) -> SimDuration {
        let c = self.checkpoint_cost.as_secs_f64();
        SimDuration::from_secs_f64((2.0 * c / self.failure_rate).sqrt())
    }
}

/// First-order multilevel extension of Young's model.
///
/// With `L` levels, level `i` checkpointing every `T_i` at cost `C_i`
/// and absorbing failures of rate `λ_i` with restart cost `R_i`, the
/// expected overhead fraction is the sum of each level's checkpoint
/// duty cycle and its expected failure waste:
///
/// `E = 1 − Σ_i [ C_i/T_i + λ_i·(T_i/2 + R_i) ]`
///
/// Each term is the single-level first-order model; levels compose
/// additively because (to first order) failure classes are disjoint
/// and rework after a class-`i` failure is bounded by level `i`'s own
/// interval. Minimizing each term independently recovers
/// `T_i = sqrt(2·C_i/λ_i)` per level — the multilevel Young optimum.
///
/// ```
/// use ickpt_core::interval::{MultilevelIntervalModel, TierLevel};
/// use ickpt_sim::SimDuration;
///
/// // Cheap node-local checkpoints soak up frequent process crashes;
/// // rare node losses are covered by partner copies; the slow shared
/// // array only has to handle catastrophic multi-node failures.
/// let m = MultilevelIntervalModel::new(vec![
///     TierLevel {
///         checkpoint_cost: SimDuration::from_secs_f64(0.5),
///         restart_cost: SimDuration::from_secs_f64(0.5),
///         failure_rate: 1.0 / 3_600.0,
///     },
///     TierLevel {
///         checkpoint_cost: SimDuration::from_secs_f64(2.0),
///         restart_cost: SimDuration::from_secs_f64(4.0),
///         failure_rate: 1.0 / 36_000.0,
///     },
///     TierLevel {
///         checkpoint_cost: SimDuration::from_secs_f64(30.0),
///         restart_cost: SimDuration::from_secs_f64(60.0),
///         failure_rate: 1.0 / 360_000.0,
///     },
/// ]);
/// assert!(m.optimal_efficiency() > 0.95);
/// ```
#[derive(Debug, Clone)]
pub struct MultilevelIntervalModel {
    levels: Vec<TierLevel>,
}

impl MultilevelIntervalModel {
    /// Build a model from per-level costs and failure rates.
    ///
    /// # Panics
    /// If `levels` is empty or any level has a non-positive
    /// `failure_rate` or zero `checkpoint_cost`.
    pub fn new(levels: Vec<TierLevel>) -> Self {
        assert!(!levels.is_empty(), "at least one level");
        for (i, l) in levels.iter().enumerate() {
            assert!(l.failure_rate > 0.0, "level {i}: failure_rate must be positive");
            assert!(!l.checkpoint_cost.is_zero(), "level {i}: checkpoint_cost must be positive");
        }
        Self { levels }
    }

    /// The levels, fastest first.
    pub fn levels(&self) -> &[TierLevel] {
        &self.levels
    }

    /// Per-level Young-optimal intervals `T_i = sqrt(2·C_i/λ_i)`.
    pub fn young_intervals(&self) -> Vec<SimDuration> {
        self.levels.iter().map(TierLevel::young_interval).collect()
    }

    /// Expected efficiency when level `i` checkpoints every
    /// `intervals[i]`, clamped to `[0, 1]`.
    ///
    /// # Panics
    /// If `intervals.len()` differs from the number of levels or any
    /// interval is zero.
    pub fn efficiency(&self, intervals: &[SimDuration]) -> f64 {
        assert_eq!(intervals.len(), self.levels.len(), "one interval per level");
        let mut overhead = 0.0;
        for (l, t) in self.levels.iter().zip(intervals) {
            let t = t.as_secs_f64();
            assert!(t > 0.0, "intervals must be positive");
            overhead += l.checkpoint_cost.as_secs_f64() / t
                + l.failure_rate * (t / 2.0 + l.restart_cost.as_secs_f64());
        }
        (1.0 - overhead).clamp(0.0, 1.0)
    }

    /// Efficiency with every level at its Young optimum.
    pub fn optimal_efficiency(&self) -> f64 {
        self.efficiency(&self.young_intervals())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(c_secs: f64, mtbf_secs: f64) -> IntervalModel {
        IntervalModel {
            checkpoint_cost: SimDuration::from_secs_f64(c_secs),
            restart_cost: SimDuration::from_secs_f64(c_secs),
            mtbf: SimDuration::from_secs_f64(mtbf_secs),
        }
    }

    #[test]
    fn young_formula() {
        // C = 50 s, M = 10000 s: T = sqrt(2*50*10000) = 1000 s.
        let m = model(50.0, 10_000.0);
        assert!((m.young_interval().as_secs_f64() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn daly_refines_young_downward_for_large_c() {
        let m = model(500.0, 10_000.0);
        let young = m.young_interval().as_secs_f64();
        let daly = m.daly_interval().as_secs_f64();
        // Daly subtracts C and adds small corrections: below Young for
        // realistic parameters.
        assert!(daly < young, "daly {daly} vs young {young}");
        assert!(daly > 0.0);
    }

    #[test]
    fn daly_degenerate_regime() {
        let m = model(100.0, 40.0); // C >= 2M
        assert_eq!(m.daly_interval(), m.mtbf);
    }

    #[test]
    fn efficiency_peaks_near_young_interval() {
        let m = model(50.0, 10_000.0);
        let t_opt = m.young_interval();
        let e_opt = m.efficiency(t_opt);
        // Much shorter and much longer intervals are both worse.
        assert!(e_opt > m.efficiency(t_opt / 10));
        assert!(e_opt > m.efficiency(t_opt * 10));
        assert!(e_opt > 0.85 && e_opt < 1.0, "e_opt = {e_opt}");
    }

    #[test]
    fn efficiency_degrades_with_failure_rate() {
        let good = model(30.0, 100_000.0);
        let bad = model(30.0, 1_000.0);
        assert!(good.optimal_efficiency() > bad.optimal_efficiency());
    }

    #[test]
    fn from_bandwidth_uses_transfer_time() {
        // 780 MB full image over 320 MB/s disk ≈ 2.44 s per checkpoint.
        let m =
            IntervalModel::from_bandwidth(780_000_000, 320_000_000, SimDuration::from_secs(3600));
        assert!((m.checkpoint_cost.as_secs_f64() - 2.4375).abs() < 0.01);
        // The paper's scenario: with such cheap checkpoints, a
        // once-an-hour-failure machine still runs at ~96%+ efficiency.
        assert!(m.optimal_efficiency() > 0.94);
    }

    #[test]
    fn incremental_checkpoints_raise_efficiency() {
        let mtbf = SimDuration::from_secs(3600); // BlueGene/L-ish
                                                 // Full image: 780 MB; incremental at a 132 s Young interval:
                                                 // IB ≈ 12 MB/s * 132 s is bounded by the working set, call it
                                                 // 413 MB — still nearly 2x cheaper.
        let full = IntervalModel::from_bandwidth(780_000_000, 320_000_000, mtbf);
        let incr = IntervalModel::from_bandwidth(413_000_000, 320_000_000, mtbf);
        assert!(incr.optimal_efficiency() > full.optimal_efficiency());
        assert!(incr.young_interval() < full.young_interval());
    }

    fn tier(c: f64, r: f64, mtbf: f64) -> TierLevel {
        TierLevel {
            checkpoint_cost: SimDuration::from_secs_f64(c),
            restart_cost: SimDuration::from_secs_f64(r),
            failure_rate: 1.0 / mtbf,
        }
    }

    #[test]
    fn single_level_matches_young_formula() {
        // C = 50 s, M = 10000 s: T = sqrt(2·C/λ) = sqrt(2·C·M) = 1000 s.
        let m = MultilevelIntervalModel::new(vec![tier(50.0, 50.0, 10_000.0)]);
        let t = m.young_intervals();
        assert_eq!(t.len(), 1);
        assert!((t[0].as_secs_f64() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn single_level_agrees_with_flat_model_to_first_order() {
        // For cheap checkpoints (C << T) the multilevel formula and
        // the flat cycle-based one must agree closely.
        let flat = model(5.0, 100_000.0);
        let multi = MultilevelIntervalModel::new(vec![tier(5.0, 5.0, 100_000.0)]);
        let t = flat.young_interval();
        assert!((flat.efficiency(t) - multi.efficiency(&[t])).abs() < 1e-3);
    }

    #[test]
    fn young_intervals_minimize_each_level() {
        let m = MultilevelIntervalModel::new(vec![
            tier(0.5, 0.5, 3_600.0),
            tier(30.0, 60.0, 360_000.0),
        ]);
        let opt = m.young_intervals();
        let e_opt = m.efficiency(&opt);
        // Perturbing either level's interval can only hurt.
        for (i, _) in opt.iter().enumerate() {
            for scale in [4u64, 1] {
                let mut t = opt.clone();
                t[i] = if scale == 1 { t[i] / 4 } else { t[i] * scale };
                assert!(m.efficiency(&t) <= e_opt + 1e-12, "level {i} scale {scale}");
            }
        }
    }

    #[test]
    fn fast_tier_absorbing_frequent_failures_beats_flat_durable() {
        // All failures to the slow durable tier (30 s checkpoints,
        // failures every 2000 s) vs a hierarchy where the cheap local
        // tier absorbs 90% of them and the durable tier sees only the
        // remaining 10%.
        let rate = 1.0 / 2_000.0;
        let flat = MultilevelIntervalModel::new(vec![TierLevel {
            checkpoint_cost: SimDuration::from_secs(30),
            restart_cost: SimDuration::from_secs(60),
            failure_rate: rate,
        }]);
        let tiered = MultilevelIntervalModel::new(vec![
            TierLevel {
                checkpoint_cost: SimDuration::from_secs_f64(0.5),
                restart_cost: SimDuration::from_secs_f64(1.0),
                failure_rate: rate * 0.9,
            },
            TierLevel {
                checkpoint_cost: SimDuration::from_secs(30),
                restart_cost: SimDuration::from_secs(60),
                failure_rate: rate * 0.1,
            },
        ]);
        assert!(
            tiered.optimal_efficiency() > flat.optimal_efficiency() + 0.05,
            "tiered {} vs flat {}",
            tiered.optimal_efficiency(),
            flat.optimal_efficiency()
        );
    }

    #[test]
    fn efficiency_clamps_in_hopeless_regimes() {
        // Failures every 40 s against 100 s checkpoints: no interval
        // can win, efficiency pins to zero instead of going negative.
        let m = MultilevelIntervalModel::new(vec![tier(100.0, 100.0, 40.0)]);
        assert_eq!(m.optimal_efficiency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "failure_rate must be positive")]
    fn zero_failure_rate_rejected() {
        MultilevelIntervalModel::new(vec![TierLevel {
            checkpoint_cost: SimDuration::from_secs(1),
            restart_cost: SimDuration::from_secs(1),
            failure_rate: 0.0,
        }]);
    }
}
