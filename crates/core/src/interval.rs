//! Checkpoint-interval optimization: Young's and Daly's formulas.
//!
//! The paper's motivation (§1) is a 65,536-processor BlueGene/L
//! "expected to experience failures every few hours", demanding
//! checkpoints "every few minutes". How often exactly is a classic
//! result: given a per-checkpoint cost `C` and a system mean time
//! between failures `M`, Young's first-order optimum is
//! `T_opt = sqrt(2·C·M)`, refined by Daly for restart cost `R`.
//! This module turns the paper's measured bandwidth requirements into
//! concrete deployment guidance: from an application's incremental
//! checkpoint size and a device bandwidth we get `C`, and from `C` and
//! the failure rate the optimal interval and the machine *efficiency*
//! (useful fraction of wall time) an operator can expect.

use ickpt_sim::SimDuration;

/// Inputs of the interval optimization.
///
/// ```
/// use ickpt_core::interval::IntervalModel;
/// use ickpt_sim::SimDuration;
///
/// // A 413 MB incremental checkpoint over a 320 MB/s disk, on a
/// // machine failing hourly (the paper's §1 projection):
/// let m = IntervalModel::from_bandwidth(
///     413_000_000, 320_000_000, SimDuration::from_secs(3600));
/// let t = m.young_interval();
/// assert!(t.as_secs_f64() > 60.0 && t.as_secs_f64() < 120.0);
/// assert!(m.optimal_efficiency() > 0.95);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IntervalModel {
    /// Time to write one checkpoint to stable storage.
    pub checkpoint_cost: SimDuration,
    /// Time to restart from a checkpoint (restore + warm-up).
    pub restart_cost: SimDuration,
    /// System mean time between failures.
    pub mtbf: SimDuration,
}

impl IntervalModel {
    /// Build from the paper's quantities: an incremental checkpoint of
    /// `checkpoint_bytes` over a `bandwidth` (bytes/s) path, with the
    /// restart reading the same data back.
    pub fn from_bandwidth(checkpoint_bytes: u64, bandwidth: u64, mtbf: SimDuration) -> Self {
        let cost = SimDuration::for_transfer(checkpoint_bytes, bandwidth);
        Self { checkpoint_cost: cost, restart_cost: cost, mtbf }
    }

    /// Young's first-order optimal interval: `sqrt(2 C M)`.
    pub fn young_interval(&self) -> SimDuration {
        let c = self.checkpoint_cost.as_secs_f64();
        let m = self.mtbf.as_secs_f64();
        SimDuration::from_secs_f64((2.0 * c * m).sqrt())
    }

    /// Daly's higher-order optimum (valid for `C < 2M`):
    /// `sqrt(2 C M) · [1 + 1/3·sqrt(C/(2M)) + (1/9)·(C/(2M))] - C`.
    pub fn daly_interval(&self) -> SimDuration {
        let c = self.checkpoint_cost.as_secs_f64();
        let m = self.mtbf.as_secs_f64();
        if c >= 2.0 * m {
            // Degenerate regime: checkpointing costs more than the
            // expected uptime; checkpoint continuously.
            return self.mtbf;
        }
        let x = (c / (2.0 * m)).sqrt();
        let t = (2.0 * c * m).sqrt() * (1.0 + x / 3.0 + x * x / 9.0) - c;
        SimDuration::from_secs_f64(t.max(c))
    }

    /// Expected machine efficiency (useful work / wall time) when
    /// checkpointing every `interval`, using the standard
    /// expected-waste formulation: per cycle of length `T + C`, the
    /// checkpoint wastes `C`, and a failure — probability `(T+C)/M`
    /// per cycle, uniformly arriving — wastes on average
    /// `(T+C)/2 + R` of rework and restart:
    ///
    /// `E = (T − ((T+C)/M)·((T+C)/2 + R)) / (T + C)`.
    pub fn efficiency(&self, interval: SimDuration) -> f64 {
        let t = interval.as_secs_f64();
        let c = self.checkpoint_cost.as_secs_f64();
        let r = self.restart_cost.as_secs_f64();
        let m = self.mtbf.as_secs_f64();
        let cycle = t + c;
        let waste_fail = (cycle / m) * (cycle / 2.0 + r);
        ((t - waste_fail) / cycle).clamp(0.0, 1.0)
    }

    /// Efficiency at Young's optimum.
    pub fn optimal_efficiency(&self) -> f64 {
        self.efficiency(self.young_interval())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(c_secs: f64, mtbf_secs: f64) -> IntervalModel {
        IntervalModel {
            checkpoint_cost: SimDuration::from_secs_f64(c_secs),
            restart_cost: SimDuration::from_secs_f64(c_secs),
            mtbf: SimDuration::from_secs_f64(mtbf_secs),
        }
    }

    #[test]
    fn young_formula() {
        // C = 50 s, M = 10000 s: T = sqrt(2*50*10000) = 1000 s.
        let m = model(50.0, 10_000.0);
        assert!((m.young_interval().as_secs_f64() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn daly_refines_young_downward_for_large_c() {
        let m = model(500.0, 10_000.0);
        let young = m.young_interval().as_secs_f64();
        let daly = m.daly_interval().as_secs_f64();
        // Daly subtracts C and adds small corrections: below Young for
        // realistic parameters.
        assert!(daly < young, "daly {daly} vs young {young}");
        assert!(daly > 0.0);
    }

    #[test]
    fn daly_degenerate_regime() {
        let m = model(100.0, 40.0); // C >= 2M
        assert_eq!(m.daly_interval(), m.mtbf);
    }

    #[test]
    fn efficiency_peaks_near_young_interval() {
        let m = model(50.0, 10_000.0);
        let t_opt = m.young_interval();
        let e_opt = m.efficiency(t_opt);
        // Much shorter and much longer intervals are both worse.
        assert!(e_opt > m.efficiency(t_opt / 10));
        assert!(e_opt > m.efficiency(t_opt * 10));
        assert!(e_opt > 0.85 && e_opt < 1.0, "e_opt = {e_opt}");
    }

    #[test]
    fn efficiency_degrades_with_failure_rate() {
        let good = model(30.0, 100_000.0);
        let bad = model(30.0, 1_000.0);
        assert!(good.optimal_efficiency() > bad.optimal_efficiency());
    }

    #[test]
    fn from_bandwidth_uses_transfer_time() {
        // 780 MB full image over 320 MB/s disk ≈ 2.44 s per checkpoint.
        let m =
            IntervalModel::from_bandwidth(780_000_000, 320_000_000, SimDuration::from_secs(3600));
        assert!((m.checkpoint_cost.as_secs_f64() - 2.4375).abs() < 0.01);
        // The paper's scenario: with such cheap checkpoints, a
        // once-an-hour-failure machine still runs at ~96%+ efficiency.
        assert!(m.optimal_efficiency() > 0.94);
    }

    #[test]
    fn incremental_checkpoints_raise_efficiency() {
        let mtbf = SimDuration::from_secs(3600); // BlueGene/L-ish
                                                 // Full image: 780 MB; incremental at a 132 s Young interval:
                                                 // IB ≈ 12 MB/s * 132 s is bounded by the working set, call it
                                                 // 413 MB — still nearly 2x cheaper.
        let full = IntervalModel::from_bandwidth(780_000_000, 320_000_000, mtbf);
        let incr = IntervalModel::from_bandwidth(413_000_000, 320_000_000, mtbf);
        assert!(incr.optimal_efficiency() > full.optimal_efficiency());
        assert!(incr.young_interval() < full.young_interval());
    }
}
