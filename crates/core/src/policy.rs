//! Run-time detection of periodic application behaviour.
//!
//! §6.2: "These codes typically alternate between processing and
//! communication bursts that can automatically be identified at run
//! time [...] This behavior can be exploited to implement efficient
//! coordinated checkpoints." And §6.2's Table 3 characterizes the main
//! iteration of each application. This module does that identification
//! from nothing but the tracker's IWS series:
//!
//! * [`detect_period`] — autocorrelation over the IWS series finds the
//!   main-iteration period (Table 3's "Average Period").
//! * [`detect_bursts`] — threshold segmentation finds processing
//!   bursts; the gaps between bursts are where checkpoints are cheap
//!   ("it may not be convenient to checkpoint during a processing
//!   burst, because pages are likely to be re-used in a short amount of
//!   time").
//! * [`suggest_checkpoint_windows`] — the windows right after each
//!   burst ends.

use ickpt_sim::SimDuration;

use crate::metrics::IwsSample;

/// A detected processing burst: window index range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// First window of the burst.
    pub start: usize,
    /// One past the last window of the burst.
    pub end: usize,
    /// Peak IWS (pages) inside the burst.
    pub peak_pages: u64,
}

/// Output of burst segmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstReport {
    /// Detected bursts in window order.
    pub bursts: Vec<Burst>,
    /// Mean gap between consecutive burst starts, in windows.
    pub mean_start_gap: Option<f64>,
}

/// Detect the dominant period of `series` (IWS pages per window) by
/// normalized autocorrelation. Returns the period as a duration
/// (`lag × timeslice`), or `None` when no significant periodicity
/// exists at lags ≥ 2 — which for these workloads means the iteration
/// is shorter than the timeslice (the NAS codes at a 1 s timeslice) or
/// the series is flat.
///
/// `skip` initial windows are ignored (the data-initialization burst).
pub fn detect_period(series: &[u64], timeslice: SimDuration, skip: usize) -> Option<SimDuration> {
    let x: Vec<f64> = series.iter().skip(skip).map(|&v| v as f64).collect();
    let n = x.len();
    if n < 8 {
        return None;
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let denom: f64 = x.iter().map(|v| (v - mean) * (v - mean)).sum();
    if denom <= f64::EPSILON {
        return None; // flat series
    }
    let max_lag = n / 2;
    let ac = |k: usize| -> f64 {
        let mut s = 0.0;
        for i in 0..n - k {
            s += (x[i] - mean) * (x[i + k] - mean);
        }
        s / denom
    };
    // The fundamental period is the *global* maximum of the
    // autocorrelation over lags >= 2. Intra-iteration kernel structure
    // produces smaller local peaks at short lags; harmonics at
    // multiples of the fundamental correlate over fewer terms and so
    // score strictly lower.
    let values: Vec<f64> = (0..=max_lag).map(ac).collect();
    // Collect the significant local maxima of the autocorrelation.
    let mut peaks: Vec<(usize, f64)> = Vec::new();
    for k in 2..max_lag {
        let is_peak = values[k] > values[k - 1] && values[k] >= values[k + 1];
        if is_peak && values[k] > 0.25 {
            peaks.push((k, values[k]));
        }
    }
    let &(k_star, v_star) = peaks.iter().max_by(|a, b| a.1.total_cmp(&b.1))?;
    // Sub-multiple correction: when the true period is a non-integer
    // number of windows, phase drift makes a *multiple* of the
    // fundamental score highest (it realigns there). If an earlier
    // peak divides the winner nearly evenly and correlates strongly,
    // it is the fundamental.
    let fundamental = peaks
        .iter()
        .filter(|&&(k, v)| {
            if k >= k_star || v < 0.5 * v_star {
                return false;
            }
            let ratio = k_star as f64 / k as f64;
            ratio >= 1.8 && (ratio - ratio.round()).abs() <= 0.15
        })
        .map(|&(k, _)| k)
        .min()
        .unwrap_or(k_star);
    Some(timeslice * fundamental as u64)
}

/// Segment `samples` into processing bursts: maximal runs of windows
/// with `iws_pages >= threshold_frac * max(iws)`. Windows before
/// `skip` are ignored.
pub fn detect_bursts(samples: &[IwsSample], threshold_frac: f64, skip: usize) -> BurstReport {
    let analyzed = &samples[skip.min(samples.len())..];
    let max = analyzed.iter().map(|s| s.iws_pages).max().unwrap_or(0);
    if max == 0 {
        return BurstReport { bursts: Vec::new(), mean_start_gap: None };
    }
    let threshold = (threshold_frac * max as f64).max(1.0) as u64;
    let mut bursts = Vec::new();
    let mut current: Option<Burst> = None;
    for (i, s) in analyzed.iter().enumerate() {
        let idx = i + skip;
        if s.iws_pages >= threshold {
            match &mut current {
                Some(b) => {
                    b.end = idx + 1;
                    b.peak_pages = b.peak_pages.max(s.iws_pages);
                }
                None => current = Some(Burst { start: idx, end: idx + 1, peak_pages: s.iws_pages }),
            }
        } else if let Some(b) = current.take() {
            bursts.push(b);
        }
    }
    if let Some(b) = current.take() {
        bursts.push(b);
    }
    let mean_start_gap = if bursts.len() >= 2 {
        let gaps: Vec<f64> = bursts.windows(2).map(|w| (w[1].start - w[0].start) as f64).collect();
        Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
    } else {
        None
    };
    BurstReport { bursts, mean_start_gap }
}

/// The window indices immediately after each detected burst — the
/// "convenient moments" to take a coordinated checkpoint.
pub fn suggest_checkpoint_windows(report: &BurstReport) -> Vec<usize> {
    report.bursts.iter().map(|b| b.end).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickpt_sim::SimTime;

    fn mk_samples(pages: &[u64]) -> Vec<IwsSample> {
        pages
            .iter()
            .enumerate()
            .map(|(i, &p)| IwsSample {
                window: i as u64,
                end_time: SimTime::from_secs(i as u64 + 1),
                iws_pages: p,
                footprint_pages: 1000,
                faults: p,
                bytes_received: 0,
            })
            .collect()
    }

    /// A synthetic periodic series: bursts of `burst` windows at height
    /// `amp` every `period` windows.
    fn periodic(period: usize, burst: usize, amp: u64, cycles: usize) -> Vec<u64> {
        let mut v = Vec::with_capacity(period * cycles);
        for _ in 0..cycles {
            for i in 0..period {
                v.push(if i < burst { amp } else { 0 });
            }
        }
        v
    }

    #[test]
    fn detects_synthetic_period() {
        let ts = SimDuration::from_secs(1);
        let series = periodic(20, 5, 1000, 8);
        let p = detect_period(&series, ts, 0).expect("period found");
        assert_eq!(p, SimDuration::from_secs(20));
    }

    #[test]
    fn flat_series_has_no_period() {
        let ts = SimDuration::from_secs(1);
        assert_eq!(detect_period(&vec![500; 100], ts, 0), None);
        assert_eq!(detect_period(&vec![0; 100], ts, 0), None);
        assert_eq!(detect_period(&[1, 2, 3], ts, 0), None, "too short");
    }

    #[test]
    fn skip_ignores_initialization_burst() {
        let ts = SimDuration::from_secs(1);
        let mut series = vec![100_000u64, 90_000];
        series.extend(periodic(15, 4, 1000, 8));
        let p = detect_period(&series, ts, 2).expect("period found after skip");
        assert_eq!(p, SimDuration::from_secs(15));
    }

    #[test]
    fn burst_segmentation() {
        let samples = mk_samples(&[0, 0, 900, 1000, 950, 0, 0, 0, 980, 990, 0, 0]);
        let report = detect_bursts(&samples, 0.5, 0);
        assert_eq!(report.bursts.len(), 2);
        assert_eq!(report.bursts[0].start, 2);
        assert_eq!(report.bursts[0].end, 5);
        assert_eq!(report.bursts[0].peak_pages, 1000);
        assert_eq!(report.bursts[1].start, 8);
        assert_eq!(report.mean_start_gap, Some(6.0));
    }

    #[test]
    fn trailing_burst_is_closed() {
        let samples = mk_samples(&[0, 1000, 1000]);
        let report = detect_bursts(&samples, 0.5, 0);
        assert_eq!(report.bursts.len(), 1);
        assert_eq!(report.bursts[0].end, 3);
    }

    #[test]
    fn empty_and_zero_series() {
        let report = detect_bursts(&[], 0.5, 0);
        assert!(report.bursts.is_empty());
        let report = detect_bursts(&mk_samples(&[0, 0, 0]), 0.5, 0);
        assert!(report.bursts.is_empty());
    }

    #[test]
    fn checkpoint_suggestions_follow_bursts() {
        let samples = mk_samples(&[900, 1000, 0, 0, 950, 0]);
        let report = detect_bursts(&samples, 0.5, 0);
        assert_eq!(suggest_checkpoint_windows(&report), vec![2, 5]);
    }
}
