//! The write trace: record the instrumentation stream once at a fine
//! timeslice, then derive IWS samples for any coarser timeslice by
//! replaying it — the paper's "instrument once, analyze many" reading
//! of §6.1, where IWS/IB at a timeslice is a pure function of *which
//! pages are written when*.
//!
//! A [`RankTrace`] is the per-rank recording: for every fine timeslice
//! (the *trace resolution*) the coalesced dirty-page ranges at the
//! alarm, the ranges memory exclusion unmapped during the slice, the
//! footprint at the alarm, and the bytes received. [`RankTrace::rebin`]
//! derives the exact sample sequence a direct run at any timeslice
//! `k × resolution` would have produced, by replaying the slices in
//! order into an accumulator:
//!
//! ```text
//! acc := (acc \ unmapped_j) ∪ dirty_j        for each fine slice j
//! ```
//!
//! The subtract-then-union order is what makes mid-window memory
//! exclusion exact: a page touched in fine slice j₁ and unmapped in a
//! later slice j₂ of the same coarse window must not appear in that
//! window's IWS (§4.2 — "pages belonging to unmapped areas are not
//! taken into account"), and a page re-touched *after* an unmap in the
//! same slice is dirty again at the slice's end, so it is in `dirty_j`
//! and survives the union.
//!
//! Exactness holds because the characterization clock trajectory is
//! independent of the tracker when faults are free (`fault_cost = 0`,
//! no clock stretching — the standard configuration): the same touches
//! happen at the same virtual instants regardless of the timeslice, and
//! every coarse window boundary (a multiple of `k × resolution`) is
//! also a fine boundary. This is property-tested against the direct
//! simulation (the executable reference, as everywhere in this repo)
//! in `crates/bench/tests/rebin_props.rs`.

use ickpt_mem::{DirtyBitmap, FlatDirtyBitmap, PageRange};
use ickpt_sim::{SimDuration, SimTime};

use crate::metrics::IwsSample;

/// One fine timeslice of the recorded write stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSlice {
    /// Alarm instant ending the slice (a multiple of the resolution
    /// for alarm slices; the trailing flush slice ends wherever the
    /// run did).
    pub end_time: SimTime,
    /// Coalesced dirty ranges at the alarm (the fine IWS).
    pub dirty: Vec<PageRange>,
    /// Ranges unmapped (heap shrink / `munmap`) during the slice, in
    /// event order. Recorded regardless of their dirty state: memory
    /// exclusion must erase them from *earlier* slices' contributions
    /// when windows are widened.
    pub unmapped: Vec<PageRange>,
    /// Footprint at the alarm, in pages.
    pub footprint_pages: u64,
    /// Page faults taken during the slice.
    pub faults: u64,
    /// Message payload received during the slice.
    pub bytes_received: u64,
    /// True for the trailing partial slice the tracker's `finish`
    /// flush emits (its contents duplicate the final boundary residue,
    /// so replay skips it).
    pub is_flush: bool,
}

impl TraceSlice {
    /// Dirty pages in this slice (sum of coalesced range lengths).
    pub fn iws_pages(&self) -> u64 {
        self.dirty.iter().map(|r| r.len).sum()
    }
}

/// The fine-window state at one iteration boundary: everything the
/// tracker accumulated since the last fired alarm, as of the boundary
/// allreduce's completion. A direct run at a coarser timeslice that
/// stopped at this boundary would flush exactly the union of the fine
/// slices since its last coarse alarm plus this residue — which is how
/// [`RankTrace::rebin_with_flush`] reconstructs the trailing partial
/// sample bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryResidue {
    /// The boundary's completion instant (the stopping run's final
    /// time).
    pub at: SimTime,
    /// Dirty ranges accumulated since the last fired alarm.
    pub dirty: Vec<PageRange>,
    /// Ranges unmapped since the last fired alarm, in event order.
    pub unmapped: Vec<PageRange>,
    /// Bytes received since the last fired alarm (includes the
    /// boundary allreduce itself).
    pub bytes_received: u64,
    /// Footprint at the boundary, in pages.
    pub footprint_pages: u64,
}

/// The recorded write stream of one rank at one trace resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankTrace {
    /// The fine timeslice the trace was recorded at.
    pub resolution: SimDuration,
    /// Address-space capacity (pages) — sizes re-bin accumulators.
    pub capacity_pages: u64,
    /// Slices in time order, ending at successive resolution
    /// multiples (plus at most one trailing partial flush slice).
    pub slices: Vec<TraceSlice>,
    /// Fine-window residues at each iteration boundary, in time order
    /// (recorded when the runner coordinates a boundary).
    pub residues: Vec<BoundaryResidue>,
}

impl RankTrace {
    /// Whether `timeslice` can be derived from this trace.
    pub fn supports(&self, timeslice: SimDuration) -> bool {
        !timeslice.is_zero() && timeslice.0.is_multiple_of(self.resolution.0)
    }

    /// Derive the IWS samples of a direct run at `timeslice` (a
    /// multiple of the resolution) that finished at `stop`: exactly
    /// the full windows with `end_time <= stop`. (A direct run also
    /// flushes one trailing partial window at its final instant; IB
    /// statistics ignore partial windows, and the flush is not
    /// derivable from coarser slices, so re-binned reports omit it.)
    ///
    /// `faults` in derived samples equals `iws_pages` — the first
    /// touch of a page in a window is exactly one fault there — which
    /// differs from the direct count only when a page is unmapped,
    /// re-mapped and re-touched within one window.
    pub fn rebin(&self, timeslice: SimDuration, stop: SimTime) -> Vec<IwsSample> {
        let mut acc = DirtyBitmap::new(self.capacity_pages);
        self.replay(timeslice, stop, &mut acc).0
    }

    /// [`RankTrace::rebin`] over the flat reference bitmap — the
    /// executable reference for the replay itself (the hierarchical
    /// and flat bitmaps must agree; unit tests below compare them).
    pub fn rebin_reference(&self, timeslice: SimDuration, stop: SimTime) -> Vec<IwsSample> {
        let mut acc = FlatDirtyBitmap::new(self.capacity_pages);
        self.replay(timeslice, stop, &mut acc).0
    }

    /// [`RankTrace::rebin`] plus the trailing partial flush sample a
    /// direct run finishing at `stop` would emit. `stop` must be an
    /// iteration boundary with a recorded [`BoundaryResidue`]: the
    /// flush window's dirty set is the leftover replay accumulator
    /// (fine slices past the last coarse alarm) with the residue
    /// applied on top, and it is emitted under the same condition the
    /// tracker's `finish` uses (any dirty page or pending bytes).
    pub fn rebin_with_flush(&self, timeslice: SimDuration, stop: SimTime) -> Vec<IwsSample> {
        let residue = self
            .residues
            .binary_search_by(|r| r.at.cmp(&stop))
            .map(|i| &self.residues[i])
            .unwrap_or_else(|_| panic!("no boundary residue recorded at {stop}"));
        let mut acc = DirtyBitmap::new(self.capacity_pages);
        let (mut out, mut bytes) = self.replay(timeslice, stop, &mut acc);
        for &r in &residue.unmapped {
            acc.clear_range(r);
        }
        for &r in &residue.dirty {
            acc.set_range(r);
        }
        bytes += residue.bytes_received;
        let iws = acc.count();
        if iws > 0 || bytes > 0 {
            out.push(IwsSample {
                window: out.len() as u64,
                end_time: stop,
                iws_pages: iws,
                footprint_pages: residue.footprint_pages,
                faults: iws,
                bytes_received: bytes,
            });
        }
        out
    }

    /// Replay fine slices through `stop`, emitting a sample at every
    /// coarse boundary. Returns the samples plus the bytes accumulated
    /// past the last coarse boundary; `acc` is left holding the dirty
    /// set of that trailing partial stretch.
    fn replay<B: RebinSet>(
        &self,
        timeslice: SimDuration,
        stop: SimTime,
        acc: &mut B,
    ) -> (Vec<IwsSample>, u64) {
        assert!(
            self.supports(timeslice),
            "timeslice {timeslice} is not a multiple of the trace resolution {}",
            self.resolution
        );
        let mut out = Vec::new();
        let mut bytes = 0u64;
        for slice in &self.slices {
            // The trace run's own flush slice duplicates its final
            // boundary residue; nothing after either of them.
            if slice.is_flush || slice.end_time > stop {
                break;
            }
            for &r in &slice.unmapped {
                acc.clear_range(r);
            }
            for &r in &slice.dirty {
                acc.set_range(r);
            }
            bytes += slice.bytes_received;
            if slice.end_time.0 % timeslice.0 == 0 {
                let iws = acc.count();
                out.push(IwsSample {
                    window: out.len() as u64,
                    end_time: slice.end_time,
                    iws_pages: iws,
                    footprint_pages: slice.footprint_pages,
                    faults: iws,
                    bytes_received: bytes,
                });
                acc.clear_all();
                bytes = 0;
            }
        }
        (out, bytes)
    }
}

/// The bitmap operations re-binning needs, so the hierarchical and
/// flat implementations share one replay loop.
trait RebinSet {
    fn set_range(&mut self, r: PageRange);
    fn clear_range(&mut self, r: PageRange);
    fn count(&self) -> u64;
    fn clear_all(&mut self);
}

impl RebinSet for DirtyBitmap {
    fn set_range(&mut self, r: PageRange) {
        DirtyBitmap::set_range(self, r);
    }
    fn clear_range(&mut self, r: PageRange) {
        DirtyBitmap::clear_range(self, r);
    }
    fn count(&self) -> u64 {
        DirtyBitmap::count(self)
    }
    fn clear_all(&mut self) {
        DirtyBitmap::clear_all(self);
    }
}

impl RebinSet for FlatDirtyBitmap {
    fn set_range(&mut self, r: PageRange) {
        FlatDirtyBitmap::set_range(self, r);
    }
    fn clear_range(&mut self, r: PageRange) {
        FlatDirtyBitmap::clear_range(self, r);
    }
    fn count(&self) -> u64 {
        FlatDirtyBitmap::count(self)
    }
    fn clear_all(&mut self) {
        FlatDirtyBitmap::clear_all(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn slice(end_s: u64, dirty: &[(u64, u64)], unmapped: &[(u64, u64)]) -> TraceSlice {
        TraceSlice {
            end_time: s(end_s),
            dirty: dirty.iter().map(|&(a, l)| PageRange::new(a, l)).collect(),
            unmapped: unmapped.iter().map(|&(a, l)| PageRange::new(a, l)).collect(),
            footprint_pages: 100,
            faults: dirty.iter().map(|&(_, l)| l).sum(),
            bytes_received: 10 * end_s,
            is_flush: false,
        }
    }

    fn trace(slices: Vec<TraceSlice>) -> RankTrace {
        RankTrace {
            resolution: SimDuration::from_secs(1),
            capacity_pages: 100,
            slices,
            residues: Vec::new(),
        }
    }

    #[test]
    fn identity_rebin_reproduces_fine_slices() {
        let t = trace(vec![slice(1, &[(0, 10)], &[]), slice(2, &[(5, 10)], &[])]);
        let samples = t.rebin(SimDuration::from_secs(1), s(2));
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].iws_pages, 10);
        assert_eq!(samples[1].iws_pages, 10);
        assert_eq!(samples[0].bytes_received, 10);
        assert_eq!(samples[1].bytes_received, 20);
        assert_eq!(samples[1].window, 1);
    }

    #[test]
    fn widening_unions_overlapping_slices() {
        // Pages 0..10 and 5..15 overlap: the 2 s window holds 15, not 20.
        let t = trace(vec![slice(1, &[(0, 10)], &[]), slice(2, &[(5, 10)], &[])]);
        let samples = t.rebin(SimDuration::from_secs(2), s(2));
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].iws_pages, 15);
        assert_eq!(samples[0].bytes_received, 30, "bytes sum over the window");
        assert_eq!(samples[0].end_time, s(2));
    }

    #[test]
    fn mid_window_unmap_is_excluded() {
        // Touched in slice 1, unmapped in slice 2: a direct 2 s run
        // would never report these pages (§4.2 memory exclusion).
        let t = trace(vec![slice(1, &[(0, 10)], &[]), slice(2, &[], &[(0, 10)])]);
        let samples = t.rebin(SimDuration::from_secs(2), s(2));
        assert_eq!(samples[0].iws_pages, 0);
    }

    #[test]
    fn retouch_after_unmap_survives() {
        // Unmapped early in slice 2 but re-touched later in it: dirty
        // at the slice's alarm, so the union keeps it.
        let t = trace(vec![slice(1, &[(0, 10)], &[]), slice(2, &[(0, 4)], &[(0, 10)])]);
        let samples = t.rebin(SimDuration::from_secs(2), s(2));
        assert_eq!(samples[0].iws_pages, 4);
    }

    #[test]
    fn stop_truncates_and_partial_tail_is_dropped() {
        let mut slices =
            vec![slice(1, &[(0, 1)], &[]), slice(2, &[(1, 1)], &[]), slice(3, &[(2, 1)], &[])];
        // The trace run's own trailing flush slice.
        slices.push(TraceSlice {
            end_time: SimTime::from_secs_f64(3.5),
            dirty: vec![PageRange::new(50, 1)],
            unmapped: vec![],
            footprint_pages: 100,
            faults: 1,
            bytes_received: 7,
            is_flush: true,
        });
        let t = trace(slices);
        // stop = 2 s: only the first two slices participate.
        assert_eq!(t.rebin(SimDuration::from_secs(1), s(2)).len(), 2);
        // stop beyond everything: the partial tail still never binds.
        assert_eq!(t.rebin(SimDuration::from_secs(1), s(100)).len(), 3);
        // Widening to 2 s with stop 3 s: one full window (the window
        // ending at 4 s is incomplete and a direct run would not have
        // emitted it either).
        assert_eq!(t.rebin(SimDuration::from_secs(2), s(3)).len(), 1);
    }

    #[test]
    fn hier_and_flat_rebin_agree() {
        let t = trace(vec![
            slice(1, &[(0, 30), (40, 9)], &[]),
            slice(2, &[(20, 30)], &[(0, 5)]),
            slice(3, &[(0, 2)], &[(41, 3)]),
            slice(4, &[], &[]),
        ]);
        for ts in [1u64, 2, 4] {
            assert_eq!(
                t.rebin(SimDuration::from_secs(ts), s(4)),
                t.rebin_reference(SimDuration::from_secs(ts), s(4)),
                "timeslice {ts}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn non_multiple_timeslice_panics() {
        let t = trace(vec![slice(1, &[], &[])]);
        t.rebin(SimDuration::from_millis(1500), s(1));
    }

    #[test]
    fn flush_reconstruction_unions_tail_slices_and_residue() {
        // 2 s windows, stopping at 3.25 s: one full window (0..2],
        // then a partial stretch made of the 3 s slice plus a residue
        // covering (3 s, 3.25 s].
        let mut t = trace(vec![
            slice(1, &[(0, 10)], &[]),
            slice(2, &[(5, 10)], &[]),
            slice(3, &[(20, 4)], &[]),
        ]);
        let at = SimTime::from_secs_f64(3.25);
        t.residues.push(BoundaryResidue {
            at,
            dirty: vec![PageRange::new(22, 4)], // overlaps the 3 s slice
            unmapped: vec![],
            bytes_received: 5,
            footprint_pages: 77,
        });
        let samples = t.rebin_with_flush(SimDuration::from_secs(2), at);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].iws_pages, 15);
        let flush = &samples[1];
        assert_eq!(flush.end_time, at);
        assert_eq!(flush.iws_pages, 6, "20..24 union 22..26");
        assert_eq!(flush.bytes_received, 30 + 5, "3 s slice bytes + residue bytes");
        assert_eq!(flush.footprint_pages, 77);
    }

    #[test]
    fn flush_with_empty_residue_and_clean_tail_is_omitted() {
        let mut t = trace(vec![slice(1, &[(0, 10)], &[])]);
        // Zero out the slice bytes so the window boundary leaves
        // nothing pending.
        t.slices[0].bytes_received = 0;
        let at = s(1);
        t.residues.push(BoundaryResidue {
            at,
            dirty: vec![],
            unmapped: vec![],
            bytes_received: 0,
            footprint_pages: 100,
        });
        let samples = t.rebin_with_flush(SimDuration::from_secs(1), at);
        assert_eq!(samples.len(), 1, "nothing pending: no flush sample, like finish()");
    }

    #[test]
    fn flush_residue_unmap_erases_tail_contribution() {
        let mut t = trace(vec![
            slice(1, &[(0, 10)], &[]),
            slice(2, &[(1, 2)], &[]),
            slice(3, &[(40, 6)], &[]),
        ]);
        let at = SimTime::from_secs_f64(3.5);
        t.residues.push(BoundaryResidue {
            at,
            dirty: vec![],
            unmapped: vec![PageRange::new(40, 6)],
            bytes_received: 0,
            footprint_pages: 94,
        });
        // 2 s windows: one full window (slices 1+2); the partial
        // tail's pages 40..46 were unmapped before the stop, so only
        // the tail's pending bytes keep the flush sample.
        let samples = t.rebin_with_flush(SimDuration::from_secs(2), at);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].iws_pages, 10);
        assert_eq!(samples[1].iws_pages, 0);
        assert_eq!(samples[1].bytes_received, 30, "3 s slice bytes");
    }
}
