//! The write tracker: a software MMU reproducing the paper's
//! instrumentation library (§4.2).
//!
//! The paper's mechanism, reproduced bit by bit:
//!
//! * All data pages are write-protected. The first write to a protected
//!   page raises a fault; the handler records the page as dirty and
//!   unprotects it, so later writes in the same timeslice are free.
//!   Here "protected" is a clear bit in [`WriteTracker::window`] and
//!   "fault" is [`WriteTracker::touch_range`] reporting a newly set bit.
//! * An alarm fires every *checkpoint timeslice*: it records the memory
//!   footprint and the count of dirty pages (the IWS), resets the dirty
//!   set, and re-protects all data pages. Here that is
//!   [`WriteTracker::advance_to`] crossing a window boundary.
//! * Pages that are unmapped (heap shrink, `munmap`) are dropped from
//!   every dirty set — the paper's memory-exclusion behaviour ("pages
//!   belonging to unmapped areas are not taken into account", §4.2).
//! * Each fault costs time. The paper measured < 10 % slowdown at a 1 s
//!   timeslice (§6.5); the tracker charges
//!   [`TrackerConfig::fault_cost`] per fault so the simulation exhibits
//!   the same intrusiveness behaviour.
//!
//! On top of the per-window set the tracker can maintain three optional
//! accumulation sets: the *checkpoint set* (pages dirtied since the
//! last checkpoint — what an incremental checkpoint must save), the
//! *epoch set* (unique pages per fixed epoch, used to measure the
//! fraction of memory overwritten per iteration, Table 3), and the
//! *iteration set* (ground truth per application-declared iteration).

use ickpt_mem::{DirtyBitmap, PageRange};
use ickpt_obs::{Event, Lane, Recorder};
use ickpt_sim::{SimDuration, SimTime};

use crate::metrics::{IwsSample, SampleSummary};
use crate::trace::{BoundaryResidue, RankTrace, TraceSlice};

/// What the tracker keeps of its per-window sample stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMode {
    /// Keep every window sample (the historical behaviour).
    Full,
    /// Keep a bounded reservoir of at most `reservoir` samples
    /// (stride-doubling decimation: always windows 0, s, 2s, … for the
    /// smallest power-of-two stride that fits) plus the exact
    /// [`SampleSummary`]. At 16k ranks the full series would cost
    /// gigabytes; the reservoir keeps report memory flat per rank.
    Compact {
        /// Maximum samples retained (clamped to at least 2).
        reservoir: usize,
    },
}

/// Tracker configuration.
#[derive(Debug, Clone)]
pub struct TrackerConfig {
    /// The checkpoint timeslice (§6.1): alarm period for IWS sampling.
    pub timeslice: SimDuration,
    /// Virtual time charged per page fault (protection fault + handler
    /// + `mprotect`). ~10 µs was typical for 2004-era Itanium Linux;
    ///   set to zero to measure workloads without intrusiveness.
    pub fault_cost: SimDuration,
    /// Maintain the dirty-since-last-checkpoint set (needed when actual
    /// checkpoints are taken; costs one extra bitmap update per touch).
    pub track_checkpoint_set: bool,
    /// Accumulate unique pages per fixed epoch of this length
    /// (Table 3's "% of memory overwritten" measurement).
    pub epoch: Option<SimDuration>,
    /// Accumulate unique pages per application-declared iteration.
    pub track_iterations: bool,
    /// Record a [`crate::trace::RankTrace`]: snapshot the coalesced
    /// dirty ranges (and the ranges memory exclusion unmapped) at every
    /// alarm, so IWS at any multiple of this timeslice can be derived
    /// later without re-running the application.
    pub record_trace: bool,
    /// Flight recorder; every fired alarm emits one `TrackerWindow`
    /// span covering the closed window. Disabled by default.
    pub obs: Recorder,
    /// Rank lane the tracker events land on.
    pub obs_rank: u32,
    /// Sample retention policy; [`SampleMode::Full`] by default.
    pub sample_mode: SampleMode,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            timeslice: SimDuration::from_secs(1),
            fault_cost: SimDuration::ZERO,
            track_checkpoint_set: false,
            epoch: None,
            track_iterations: false,
            record_trace: false,
            obs: Recorder::disabled(),
            obs_rank: 0,
            sample_mode: SampleMode::Full,
        }
    }
}

/// Unique-page count over one epoch window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSample {
    /// Epoch index.
    pub index: u64,
    /// Virtual end time of the epoch.
    pub end_time: SimTime,
    /// Unique pages written during the epoch.
    pub unique_pages: u64,
    /// Footprint at the end of the epoch, in pages.
    pub footprint_pages: u64,
}

/// Unique-page count over one application iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationSample {
    /// Iteration index (0-based).
    pub index: u64,
    /// Virtual time the iteration ended.
    pub end_time: SimTime,
    /// Unique pages written during the iteration.
    pub unique_pages: u64,
    /// Footprint at iteration end, in pages.
    pub footprint_pages: u64,
}

/// The software-MMU write tracker.
///
/// ```
/// use ickpt_core::tracker::{TrackerConfig, WriteTracker};
/// use ickpt_mem::PageRange;
/// use ickpt_sim::SimTime;
///
/// // 1000-page space, all mapped, 1 s timeslice.
/// let mut t = WriteTracker::new(1000, 1000, TrackerConfig::default());
/// // First write to each page faults; re-writes are free.
/// assert_eq!(t.touch_range(PageRange::new(0, 100)), 100);
/// assert_eq!(t.touch_range(PageRange::new(0, 100)), 0);
/// // The alarm records the IWS and re-protects everything.
/// t.advance_to(SimTime::from_secs(1));
/// assert_eq!(t.samples()[0].iws_pages, 100);
/// assert_eq!(t.touch_range(PageRange::new(0, 1)), 1); // re-faults
/// ```
#[derive(Debug, Clone)]
pub struct WriteTracker {
    cfg: TrackerConfig,
    /// Dirty pages of the current timeslice window (clear = protected).
    window: DirtyBitmap,
    /// Dirty since last checkpoint.
    ckpt: Option<DirtyBitmap>,
    /// Dirty within current epoch.
    epoch_set: Option<DirtyBitmap>,
    /// Dirty within current application iteration.
    iter_set: Option<DirtyBitmap>,

    footprint_pages: u64,
    next_alarm: SimTime,
    next_epoch_end: SimTime,
    epoch_index: u64,
    iteration_index: u64,

    window_faults: u64,
    window_bytes_received: u64,
    total_faults: u64,
    total_bytes_received: u64,
    overhead: SimDuration,
    /// Pages dropped from the checkpoint set by memory exclusion
    /// (dirty at `munmap`/shrink time) — the §4.2 optimization's
    /// measured saving.
    excluded_pages: u64,

    samples: Vec<IwsSample>,
    /// Exact integer roll-up of every window, independent of the
    /// retention mode.
    summary: SampleSummary,
    /// Windows recorded so far (== `samples.len()` in Full mode; the
    /// authoritative window counter in Compact mode).
    window_index: u64,
    /// Compact-mode decimation stride (power of two, starts at 1).
    sample_stride: u64,
    epoch_samples: Vec<EpochSample>,
    iteration_samples: Vec<IterationSample>,
    /// Ranges unmapped since the last checkpoint, in event order — the
    /// content layer's churn set: a dedup baseline covering these pages
    /// must be invalidated before the next capture (a remapped page
    /// must never silently match hashes from a previous mapping epoch).
    churn: Vec<PageRange>,
    /// Recorded trace slices (one per fired alarm; `record_trace`).
    trace_slices: Vec<TraceSlice>,
    /// Ranges unmapped during the current window, in event order
    /// (`record_trace`) — flushed into the next slice.
    pending_unmaps: Vec<PageRange>,
    /// Fine-window residues snapshot at iteration boundaries
    /// (`record_trace`).
    residues: Vec<BoundaryResidue>,
    capacity_pages: u64,
    finished: bool,
}

impl WriteTracker {
    /// A tracker over an address space of `capacity_pages` pages with
    /// `initial_footprint_pages` already mapped.
    pub fn new(capacity_pages: u64, initial_footprint_pages: u64, cfg: TrackerConfig) -> Self {
        assert!(!cfg.timeslice.is_zero(), "timeslice must be positive");
        let ckpt = cfg.track_checkpoint_set.then(|| DirtyBitmap::new(capacity_pages));
        let epoch_set = cfg.epoch.map(|_| DirtyBitmap::new(capacity_pages));
        let iter_set = cfg.track_iterations.then(|| DirtyBitmap::new(capacity_pages));
        let next_alarm = SimTime::ZERO + cfg.timeslice;
        let next_epoch_end = SimTime::ZERO + cfg.epoch.unwrap_or(SimDuration(u64::MAX / 2));
        Self {
            cfg,
            window: DirtyBitmap::new(capacity_pages),
            ckpt,
            epoch_set,
            iter_set,
            footprint_pages: initial_footprint_pages,
            next_alarm,
            next_epoch_end,
            epoch_index: 0,
            iteration_index: 0,
            window_faults: 0,
            window_bytes_received: 0,
            total_faults: 0,
            total_bytes_received: 0,
            overhead: SimDuration::ZERO,
            excluded_pages: 0,
            samples: Vec::new(),
            summary: SampleSummary::default(),
            window_index: 0,
            sample_stride: 1,
            epoch_samples: Vec::new(),
            iteration_samples: Vec::new(),
            churn: Vec::new(),
            trace_slices: Vec::new(),
            pending_unmaps: Vec::new(),
            residues: Vec::new(),
            capacity_pages,
            finished: false,
        }
    }

    /// The configured timeslice.
    pub fn timeslice(&self) -> SimDuration {
        self.cfg.timeslice
    }

    /// When the next alarm fires. The runner splits compute phases at
    /// this boundary so every touch lands in the right window.
    pub fn next_alarm_time(&self) -> SimTime {
        self.next_alarm
    }

    /// Advance virtual time to `now`, firing every alarm (and epoch
    /// boundary) that `now` has reached or passed. Call this *before*
    /// recording touches that happen at `now`.
    pub fn advance_to(&mut self, now: SimTime) {
        while self.next_alarm <= now {
            let end = self.next_alarm;
            let widx = self.window_index;
            self.record_sample(IwsSample {
                window: widx,
                end_time: end,
                iws_pages: self.window.count(),
                footprint_pages: self.footprint_pages,
                faults: self.window_faults,
                bytes_received: self.window_bytes_received,
            });
            if self.cfg.obs.is_enabled() {
                let start = SimTime(end.0.saturating_sub(self.cfg.timeslice.0));
                self.cfg.obs.emit_span(
                    Lane::Rank(self.cfg.obs_rank),
                    start,
                    end.saturating_sub(start),
                    Event::TrackerWindow {
                        index: widx,
                        iws_pages: self.window.count(),
                        footprint_pages: self.footprint_pages,
                        faults: self.window_faults,
                    },
                );
            }
            if self.cfg.record_trace {
                self.trace_slices.push(TraceSlice {
                    end_time: end,
                    dirty: self.window.dirty_ranges(),
                    unmapped: std::mem::take(&mut self.pending_unmaps),
                    footprint_pages: self.footprint_pages,
                    faults: self.window_faults,
                    bytes_received: self.window_bytes_received,
                    is_flush: false,
                });
            }
            // The alarm handler: reset dirty count and re-protect all
            // data pages (§4.2).
            self.window.clear_all();
            self.window_faults = 0;
            self.window_bytes_received = 0;
            self.next_alarm = end + self.cfg.timeslice;
        }
        if let Some(epoch) = self.cfg.epoch {
            while self.next_epoch_end <= now {
                let end = self.next_epoch_end;
                let set = self.epoch_set.as_mut().expect("epoch set exists when epoch is set");
                self.epoch_samples.push(EpochSample {
                    index: self.epoch_index,
                    end_time: end,
                    unique_pages: set.count(),
                    footprint_pages: self.footprint_pages,
                });
                set.clear_all();
                self.epoch_index += 1;
                self.next_epoch_end = end + epoch;
            }
        }
    }

    /// Record one closed window: fold it into the exact summary, then
    /// retain it per the sample mode. In `Full` mode this is a plain
    /// push (byte-identical to the historical series). In `Compact`
    /// mode the reservoir keeps every `stride`-th window; when it
    /// fills, the stride doubles and the reservoir is re-decimated, so
    /// retention stays `O(reservoir)` over any run length.
    fn record_sample(&mut self, s: IwsSample) {
        self.summary.absorb(&s);
        match self.cfg.sample_mode {
            SampleMode::Full => self.samples.push(s),
            SampleMode::Compact { reservoir } => {
                let cap = reservoir.max(2);
                if s.window.is_multiple_of(self.sample_stride) {
                    self.samples.push(s);
                    if self.samples.len() > cap {
                        self.sample_stride *= 2;
                        let stride = self.sample_stride;
                        self.samples.retain(|x| x.window.is_multiple_of(stride));
                    }
                }
            }
        }
        self.window_index += 1;
    }

    /// Record writes to every page of `range`; returns the number of
    /// page faults (pages that were protected). The caller charges
    /// `faults * fault_cost` of virtual time; the tracker accumulates
    /// the same quantity as its intrusiveness figure.
    pub fn touch_range(&mut self, range: PageRange) -> u64 {
        let faults = self.window.set_range(range);
        if let Some(ckpt) = &mut self.ckpt {
            ckpt.set_range(range);
        }
        if let Some(es) = &mut self.epoch_set {
            es.set_range(range);
        }
        if let Some(is) = &mut self.iter_set {
            is.set_range(range);
        }
        self.window_faults += faults;
        self.total_faults += faults;
        self.overhead += self.cfg.fault_cost * faults;
        faults
    }

    /// Virtual-time cost of `faults` faults under this configuration.
    pub fn fault_cost(&self, faults: u64) -> SimDuration {
        self.cfg.fault_cost * faults
    }

    /// Record message payload received in the current window (Fig 1b's
    /// "data received per timeslice").
    pub fn note_received(&mut self, bytes: u64) {
        self.window_bytes_received += bytes;
        self.total_bytes_received += bytes;
    }

    /// A range became mapped (heap grow or `mmap`). New pages start
    /// protected and clean for IWS purposes (mapping is not a write),
    /// but they *do* enter the checkpoint set: their content changed
    /// to zeros, and a restore from an older base would otherwise
    /// resurrect whatever bytes a previous mapping left there.
    pub fn on_map(&mut self, range: PageRange) {
        self.footprint_pages += range.len;
        if let Some(ckpt) = &mut self.ckpt {
            ckpt.set_range(range);
        }
    }

    /// A range was unmapped (heap shrink or `munmap`): memory exclusion
    /// drops its pages from every dirty set (§4.2 — "pages belonging to
    /// unmapped areas are not taken into account").
    pub fn on_unmap(&mut self, range: PageRange) {
        debug_assert!(self.footprint_pages >= range.len);
        self.footprint_pages -= range.len;
        self.window.clear_range(range);
        if self.cfg.record_trace {
            // Raw, regardless of dirty state: widened windows must drop
            // contributions from *earlier* fine slices too.
            self.pending_unmaps.push(range);
        }
        if let Some(ckpt) = &mut self.ckpt {
            self.excluded_pages += ckpt.clear_range(range);
            // Track churn only when someone can consume it (the same
            // gate as the checkpoint set itself).
            self.churn.push(range);
        }
        if let Some(es) = &mut self.epoch_set {
            es.clear_range(range);
        }
        if let Some(is) = &mut self.iter_set {
            is.clear_range(range);
        }
    }

    /// Declare the end of an application iteration at `now` (ground
    /// truth for Table 3; requires `track_iterations`).
    pub fn mark_iteration(&mut self, now: SimTime) {
        if let Some(is) = &mut self.iter_set {
            self.iteration_samples.push(IterationSample {
                index: self.iteration_index,
                end_time: now,
                unique_pages: is.count(),
                footprint_pages: self.footprint_pages,
            });
            is.clear_all();
            self.iteration_index += 1;
        }
    }

    /// Take the dirty-since-last-checkpoint set for an incremental
    /// checkpoint: returns the coalesced dirty ranges and clears the
    /// set. Requires `track_checkpoint_set`.
    pub fn take_checkpoint_set(&mut self) -> Vec<PageRange> {
        let ckpt = self.ckpt.as_mut().expect("take_checkpoint_set requires track_checkpoint_set");
        let ranges = ckpt.dirty_ranges();
        ckpt.clear_all();
        ranges
    }

    /// Take the churn set: every range unmapped since the last call
    /// (or tracker start), in event order, possibly overlapping. The
    /// content layer invalidates its dedup baseline over these ranges
    /// before each incremental capture. Cleared by the call, mirroring
    /// [`WriteTracker::take_checkpoint_set`].
    pub fn take_churn_set(&mut self) -> Vec<PageRange> {
        std::mem::take(&mut self.churn)
    }

    /// Pages currently pending in the checkpoint set.
    pub fn checkpoint_set_pages(&self) -> u64 {
        self.ckpt.as_ref().map_or(0, |b| b.count())
    }

    /// Flush: emit one final (possibly partial) window ending at `now`
    /// if any activity is pending, and freeze the tracker.
    pub fn finish(&mut self, now: SimTime) {
        assert!(!self.finished, "tracker already finished");
        self.advance_to(now);
        if self.window.count() > 0 || self.window_bytes_received > 0 {
            let widx = self.window_index;
            self.record_sample(IwsSample {
                window: widx,
                end_time: now,
                iws_pages: self.window.count(),
                footprint_pages: self.footprint_pages,
                faults: self.window_faults,
                bytes_received: self.window_bytes_received,
            });
            if self.cfg.record_trace {
                // A trailing flush slice: ends off the alarm grid (or
                // on it, if `now` coincides with an alarm that had no
                // pending activity — impossible here since advance_to
                // just fired all due alarms), so re-binning ignores it;
                // kept for completeness of the recorded stream.
                self.trace_slices.push(TraceSlice {
                    end_time: now,
                    dirty: self.window.dirty_ranges(),
                    unmapped: std::mem::take(&mut self.pending_unmaps),
                    footprint_pages: self.footprint_pages,
                    faults: self.window_faults,
                    bytes_received: self.window_bytes_received,
                    is_flush: true,
                });
            }
            self.window.clear_all();
            self.window_faults = 0;
            self.window_bytes_received = 0;
        }
        self.finished = true;
    }

    /// Whether this tracker records a write trace.
    pub fn records_trace(&self) -> bool {
        self.cfg.record_trace
    }

    /// Snapshot the fine-window residue at an iteration boundary
    /// (`record_trace` only; no-op otherwise). The runner calls this
    /// right after settling the boundary allreduce, so the residue is
    /// exactly the state a run stopping here would flush on top of the
    /// completed fine slices.
    pub fn snapshot_residue(&mut self, now: SimTime) {
        if !self.cfg.record_trace {
            return;
        }
        self.residues.push(BoundaryResidue {
            at: now,
            dirty: self.window.dirty_ranges(),
            unmapped: self.pending_unmaps.clone(),
            bytes_received: self.window_bytes_received,
            footprint_pages: self.footprint_pages,
        });
    }

    /// Take the recorded trace (requires `record_trace`); the tracker
    /// should be [`WriteTracker::finish`]ed first.
    pub fn take_trace(&mut self) -> RankTrace {
        assert!(self.cfg.record_trace, "take_trace requires record_trace");
        RankTrace {
            resolution: self.cfg.timeslice,
            capacity_pages: self.capacity_pages,
            slices: std::mem::take(&mut self.trace_slices),
            residues: std::mem::take(&mut self.residues),
        }
    }

    /// Per-timeslice IWS samples recorded so far (the full series in
    /// [`SampleMode::Full`], the decimated reservoir in
    /// [`SampleMode::Compact`]).
    pub fn samples(&self) -> &[IwsSample] {
        &self.samples
    }

    /// Exact integer roll-up of every window, regardless of the sample
    /// retention mode.
    pub fn sample_summary(&self) -> &SampleSummary {
        &self.summary
    }

    /// Per-epoch unique-page samples.
    pub fn epoch_samples(&self) -> &[EpochSample] {
        &self.epoch_samples
    }

    /// Per-iteration unique-page samples (ground truth).
    pub fn iteration_samples(&self) -> &[IterationSample] {
        &self.iteration_samples
    }

    /// Current footprint in pages.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_pages
    }

    /// Total page faults taken.
    pub fn total_faults(&self) -> u64 {
        self.total_faults
    }

    /// Total bytes received.
    pub fn total_bytes_received(&self) -> u64 {
        self.total_bytes_received
    }

    /// Accumulated virtual-time overhead of fault handling — the
    /// intrusiveness quantity of §6.5.
    pub fn overhead(&self) -> SimDuration {
        self.overhead
    }

    /// Dirty pages dropped from the checkpoint set by memory exclusion
    /// (§4.2): bytes an exclusion-unaware checkpointer would have
    /// saved pointlessly.
    pub fn excluded_pages(&self) -> u64 {
        self.excluded_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_1s() -> TrackerConfig {
        TrackerConfig { timeslice: SimDuration::from_secs(1), ..Default::default() }
    }

    #[test]
    fn faults_only_on_first_touch_per_window() {
        let mut t = WriteTracker::new(100, 100, cfg_1s());
        assert_eq!(t.touch_range(PageRange::new(0, 10)), 10);
        assert_eq!(t.touch_range(PageRange::new(0, 10)), 0, "unprotected pages do not fault");
        assert_eq!(t.touch_range(PageRange::new(5, 10)), 5);
        assert_eq!(t.total_faults(), 15);
    }

    #[test]
    fn alarm_records_iws_and_reprotects() {
        let mut t = WriteTracker::new(100, 80, cfg_1s());
        t.touch_range(PageRange::new(0, 30));
        t.advance_to(SimTime::from_secs(1));
        assert_eq!(t.samples().len(), 1);
        let s = &t.samples()[0];
        assert_eq!(s.iws_pages, 30);
        assert_eq!(s.footprint_pages, 80);
        assert_eq!(s.faults, 30);
        // Re-protection: the same pages fault again in the new window.
        assert_eq!(t.touch_range(PageRange::new(0, 30)), 30);
    }

    #[test]
    fn idle_windows_emit_zero_samples() {
        let mut t = WriteTracker::new(10, 10, cfg_1s());
        t.advance_to(SimTime::from_secs(5));
        assert_eq!(t.samples().len(), 5);
        assert!(t.samples().iter().all(|s| s.iws_pages == 0));
        assert_eq!(t.samples()[4].end_time, SimTime::from_secs(5));
    }

    #[test]
    fn touches_at_boundary_belong_to_next_window() {
        let mut t = WriteTracker::new(10, 10, cfg_1s());
        t.touch_range(PageRange::new(0, 2));
        // Engine convention: advance first, then touch.
        t.advance_to(SimTime::from_secs(1));
        t.touch_range(PageRange::new(5, 2));
        t.advance_to(SimTime::from_secs(2));
        assert_eq!(t.samples()[0].iws_pages, 2);
        assert_eq!(t.samples()[1].iws_pages, 2);
    }

    #[test]
    fn bytes_received_per_window() {
        let mut t = WriteTracker::new(10, 10, cfg_1s());
        t.note_received(100);
        t.advance_to(SimTime::from_secs(1));
        t.note_received(50);
        t.advance_to(SimTime::from_secs(2));
        assert_eq!(t.samples()[0].bytes_received, 100);
        assert_eq!(t.samples()[1].bytes_received, 50);
        assert_eq!(t.total_bytes_received(), 150);
    }

    #[test]
    fn churn_set_collects_unmaps_until_taken() {
        let mut t = WriteTracker::new(
            100,
            50,
            TrackerConfig {
                timeslice: SimDuration::from_secs(1),
                track_checkpoint_set: true,
                ..Default::default()
            },
        );
        assert!(t.take_churn_set().is_empty());
        t.on_unmap(PageRange::new(10, 5));
        t.on_map(PageRange::new(10, 5));
        t.on_unmap(PageRange::new(12, 2));
        // Event order preserved, overlap allowed: the consumer just
        // invalidates, so over-invalidation is safe.
        assert_eq!(t.take_churn_set(), vec![PageRange::new(10, 5), PageRange::new(12, 2)]);
        assert!(t.take_churn_set().is_empty(), "taking clears the set");
    }

    #[test]
    fn map_unmap_footprint_and_exclusion() {
        let mut t = WriteTracker::new(100, 10, cfg_1s());
        t.on_map(PageRange::new(10, 20));
        assert_eq!(t.footprint_pages(), 30);
        t.touch_range(PageRange::new(10, 20));
        // Unmapping dirty pages removes them from the window (memory
        // exclusion): the next alarm must not report them.
        t.on_unmap(PageRange::new(10, 20));
        t.advance_to(SimTime::from_secs(1));
        assert_eq!(t.samples()[0].iws_pages, 0);
        assert_eq!(t.samples()[0].footprint_pages, 10);
    }

    #[test]
    fn newly_mapped_ranges_enter_checkpoint_set_but_not_iws() {
        let cfg = TrackerConfig { track_checkpoint_set: true, ..cfg_1s() };
        let mut t = WriteTracker::new(100, 10, cfg);
        t.on_map(PageRange::new(10, 20));
        // Mapping is not a write: the window stays clean...
        t.advance_to(SimTime::from_secs(1));
        assert_eq!(t.samples()[0].iws_pages, 0);
        // ...but an incremental checkpoint must record the fresh
        // (zeroed) pages, or a restore from an older base would
        // resurrect stale bytes into the re-used address range.
        assert_eq!(t.checkpoint_set_pages(), 20);
        t.on_unmap(PageRange::new(10, 20));
        assert_eq!(t.checkpoint_set_pages(), 0, "exclusion still applies");
        assert_eq!(t.excluded_pages(), 20, "the saving is accounted");
    }

    #[test]
    fn checkpoint_set_accumulates_across_windows() {
        let cfg = TrackerConfig { track_checkpoint_set: true, ..cfg_1s() };
        let mut t = WriteTracker::new(100, 100, cfg);
        t.touch_range(PageRange::new(0, 5));
        t.advance_to(SimTime::from_secs(1));
        t.touch_range(PageRange::new(3, 5));
        assert_eq!(t.checkpoint_set_pages(), 8, "union of both windows");
        let ranges = t.take_checkpoint_set();
        assert_eq!(ranges, vec![PageRange::new(0, 8)]);
        assert_eq!(t.checkpoint_set_pages(), 0, "taking clears the set");
    }

    #[test]
    fn epoch_samples_count_unique_pages() {
        let cfg = TrackerConfig { epoch: Some(SimDuration::from_secs(2)), ..cfg_1s() };
        let mut t = WriteTracker::new(100, 100, cfg);
        t.touch_range(PageRange::new(0, 10));
        t.advance_to(SimTime::from_secs(1));
        t.touch_range(PageRange::new(0, 10)); // same pages again
        t.advance_to(SimTime::from_secs(2));
        assert_eq!(t.epoch_samples().len(), 1);
        assert_eq!(t.epoch_samples()[0].unique_pages, 10, "re-touches are not double counted");
        t.touch_range(PageRange::new(50, 5));
        t.advance_to(SimTime::from_secs(4));
        assert_eq!(t.epoch_samples()[1].unique_pages, 5);
    }

    #[test]
    fn iteration_ground_truth() {
        let cfg = TrackerConfig { track_iterations: true, ..cfg_1s() };
        let mut t = WriteTracker::new(100, 50, cfg);
        t.touch_range(PageRange::new(0, 20));
        t.touch_range(PageRange::new(10, 20));
        t.mark_iteration(SimTime::from_secs_f64(0.5));
        t.touch_range(PageRange::new(0, 5));
        t.mark_iteration(SimTime::from_secs(1));
        let its = t.iteration_samples();
        assert_eq!(its.len(), 2);
        assert_eq!(its[0].unique_pages, 30);
        assert_eq!(its[1].unique_pages, 5);
        assert_eq!(its[1].index, 1);
    }

    #[test]
    fn fault_cost_accumulates_overhead() {
        let cfg = TrackerConfig { fault_cost: SimDuration::from_micros(10), ..cfg_1s() };
        let mut t = WriteTracker::new(100, 100, cfg);
        t.touch_range(PageRange::new(0, 100));
        t.touch_range(PageRange::new(0, 100));
        assert_eq!(t.overhead(), SimDuration::from_micros(1000), "100 faults x 10us");
        assert_eq!(t.fault_cost(3), SimDuration::from_micros(30));
    }

    #[test]
    fn finish_flushes_partial_window() {
        let mut t = WriteTracker::new(10, 10, cfg_1s());
        t.advance_to(SimTime::from_secs(1));
        t.touch_range(PageRange::new(0, 4));
        t.finish(SimTime::from_secs_f64(1.5));
        assert_eq!(t.samples().len(), 2);
        assert_eq!(t.samples()[1].iws_pages, 4);
        assert_eq!(t.samples()[1].end_time, SimTime::from_secs_f64(1.5));
    }

    #[test]
    fn finish_without_pending_activity_adds_nothing() {
        let mut t = WriteTracker::new(10, 10, cfg_1s());
        t.touch_range(PageRange::new(0, 1));
        t.advance_to(SimTime::from_secs(1));
        t.finish(SimTime::from_secs(1));
        assert_eq!(t.samples().len(), 1);
    }

    #[test]
    fn recorded_trace_mirrors_samples_and_attributes_unmaps() {
        let mut t = WriteTracker::new(100, 100, TrackerConfig { record_trace: true, ..cfg_1s() });
        t.touch_range(PageRange::new(0, 10));
        t.advance_to(SimTime::from_secs(1));
        // Unmap lands in the *second* window's slice, raw (clean pages).
        t.on_unmap(PageRange::new(90, 10));
        t.touch_range(PageRange::new(20, 5));
        t.note_received(64);
        t.finish(SimTime::from_secs(2));
        let trace = t.take_trace();
        assert_eq!(trace.resolution, SimDuration::from_secs(1));
        assert_eq!(trace.capacity_pages, 100);
        assert_eq!(trace.slices.len(), 2, "no trailing flush at an exact boundary");
        assert_eq!(trace.slices[0].dirty, vec![PageRange::new(0, 10)]);
        assert!(trace.slices[0].unmapped.is_empty());
        assert_eq!(trace.slices[1].dirty, vec![PageRange::new(20, 5)]);
        assert_eq!(trace.slices[1].unmapped, vec![PageRange::new(90, 10)]);
        assert_eq!(trace.slices[1].footprint_pages, 90);
        assert_eq!(trace.slices[1].bytes_received, 64);
        // The identity re-bin reproduces the direct samples.
        let rebinned = trace.rebin(SimDuration::from_secs(1), SimTime::from_secs(2));
        assert_eq!(rebinned.len(), t.samples().len());
        for (a, b) in rebinned.iter().zip(t.samples()) {
            assert_eq!(
                (a.iws_pages, a.end_time, a.footprint_pages),
                (b.iws_pages, b.end_time, b.footprint_pages)
            );
        }
    }

    #[test]
    fn compact_mode_bounds_samples_and_keeps_exact_summary() {
        let mk = |mode| {
            let mut t =
                WriteTracker::new(100, 100, TrackerConfig { sample_mode: mode, ..cfg_1s() });
            for w in 0..1000u64 {
                t.touch_range(PageRange::new(w % 50, 3));
                t.note_received(10);
                t.advance_to(SimTime::from_secs(w + 1));
            }
            t
        };
        let full = mk(SampleMode::Full);
        let compact = mk(SampleMode::Compact { reservoir: 32 });
        assert_eq!(full.samples().len(), 1000);
        assert!(compact.samples().len() <= 32, "got {}", compact.samples().len());
        assert!(compact.samples().len() >= 8, "reservoir should stay reasonably full");
        // The summary is exact in both modes.
        assert_eq!(full.sample_summary(), compact.sample_summary());
        assert_eq!(compact.sample_summary().windows, 1000);
        assert_eq!(compact.sample_summary().total_bytes_received, 10_000);
        // Retained samples are a strided subset of the full series.
        for s in compact.samples() {
            assert_eq!(&full.samples()[s.window as usize], s);
        }
        assert_eq!(compact.samples()[0].window, 0, "window 0 always survives decimation");
    }

    #[test]
    fn compact_mode_small_runs_keep_everything() {
        let mut t = WriteTracker::new(
            10,
            10,
            TrackerConfig { sample_mode: SampleMode::Compact { reservoir: 64 }, ..cfg_1s() },
        );
        t.touch_range(PageRange::new(0, 2));
        t.advance_to(SimTime::from_secs(3));
        assert_eq!(t.samples().len(), 3, "under the cap nothing is dropped");
        assert_eq!(t.sample_summary().windows, 3);
    }

    #[test]
    fn finish_flush_appends_partial_trace_slice() {
        let mut t = WriteTracker::new(50, 50, TrackerConfig { record_trace: true, ..cfg_1s() });
        t.touch_range(PageRange::new(0, 3));
        t.finish(SimTime::from_secs_f64(0.5));
        let trace = t.take_trace();
        assert_eq!(trace.slices.len(), 1);
        assert_eq!(trace.slices[0].end_time, SimTime::from_secs_f64(0.5));
        // Off the alarm grid: re-binning never consumes it.
        assert!(trace.rebin(SimDuration::from_secs(1), SimTime::from_secs(10)).is_empty());
    }
}
