#!/usr/bin/env bash
# Repo verification gate: everything a PR must pass, in the order that
# fails fastest. Runs fully offline (all external deps are vendored
# shims under vendor/ — see vendor/README.md).
#
# Usage:
#   scripts/verify.sh            # build + tests + fmt + clippy
#   scripts/verify.sh --bench    # also run the micro-bench smoke pass
#                                # and refresh /tmp/ickpt_bench.json
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release
run cargo test -q --workspace
run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" == "--bench" ]]; then
    # Short measurement budget: a smoke pass in seconds, not minutes.
    run cargo bench -q -p ickpt-bench --bench micro -- \
        --measure-ms 100 --save-json /tmp/ickpt_bench.json
fi

echo "verify: OK"
