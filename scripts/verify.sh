#!/usr/bin/env bash
# Repo verification gate: everything a PR must pass, in the order that
# fails fastest. Runs fully offline (all external deps are vendored
# shims under vendor/ — see vendor/README.md).
#
# Usage:
#   scripts/verify.sh               # build + tests + fmt + clippy + bench smoke
#   scripts/verify.sh --bench       # also run the micro-bench measurement pass
#                                   # and refresh /tmp/ickpt_bench.json
#   scripts/verify.sh --bench-smoke # bench smoke pass only (tiny sizes, no
#                                   # timing assertions — checks the benches
#                                   # still run, not how fast)
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

bench_smoke() {
    # Tiny footprints and a minimal measurement budget: this asserts the
    # bench harness still builds chains, restores, and merges without
    # panicking. It makes no claims about timing.
    ICKPT_BENCH_CAPTURE_MB=8 ICKPT_BENCH_RESTORE_MB=8 \
        run cargo bench -q -p ickpt-bench --bench micro -- \
        --measure-ms 20 --save-json /tmp/ickpt_bench_smoke.json

    # Trace-engine determinism: the same (small) experiment through the
    # trace-once path, serial and parallel, must be byte-identical.
    run cargo build --release -p ickpt-bench --bin repro
    echo "==> repro --only 'table 4' at 1 and 4 scheduler threads"
    ICKPT_BENCH_RANKS=4 ICKPT_BENCH_SCALE=0.05 ICKPT_BENCH_THREADS=1 \
        target/release/repro --only "table 4" >/tmp/ickpt_repro_t1.txt 2>/dev/null
    ICKPT_BENCH_RANKS=4 ICKPT_BENCH_SCALE=0.05 ICKPT_BENCH_THREADS=4 \
        target/release/repro --only "table 4" >/tmp/ickpt_repro_t4.txt 2>/dev/null
    run diff /tmp/ickpt_repro_t1.txt /tmp/ickpt_repro_t4.txt

    # Content-layer determinism: the effective-IB experiment runs every
    # app twice (dedup off, then on), asserts the two runs byte-identical
    # end to end, and its printed report must not depend on scheduler
    # parallelism.
    echo "==> repro --only 'Effective IB' at 1 and 4 scheduler threads"
    ICKPT_BENCH_THREADS=1 \
        target/release/repro --only "Effective IB" >/tmp/ickpt_dedup_t1.txt 2>/dev/null
    ICKPT_BENCH_THREADS=4 \
        target/release/repro --only "Effective IB" >/tmp/ickpt_dedup_t4.txt 2>/dev/null
    run diff /tmp/ickpt_dedup_t1.txt /tmp/ickpt_dedup_t4.txt

    # Kernel-dispatch identity: every capture/restore artifact must be
    # byte-identical whether the SIMD tiers or the scalar reference
    # computed it. The scalar run of the effective-IB experiment (its
    # report folds page hashes, dedup decisions, chunk CRCs, and byte
    # counters) must match the auto run bit for bit.
    echo "==> repro --only 'Effective IB' with ICKPT_KERNELS=scalar vs auto"
    ICKPT_KERNELS=scalar ICKPT_BENCH_THREADS=1 \
        target/release/repro --only "Effective IB" >/tmp/ickpt_kern_scalar.txt 2>/dev/null
    ICKPT_KERNELS=auto ICKPT_BENCH_THREADS=1 \
        target/release/repro --only "Effective IB" >/tmp/ickpt_kern_auto.txt 2>/dev/null
    run diff /tmp/ickpt_kern_scalar.txt /tmp/ickpt_kern_auto.txt

    # A malformed ICKPT_KERNELS value must abort with exit status 2
    # before any experiment runs half-configured.
    echo "==> repro with malformed ICKPT_KERNELS must exit 2"
    set +e
    ICKPT_KERNELS=bogus target/release/repro --only "Effective IB" >/dev/null 2>/dev/null
    rc=$?
    set -e
    if [[ "$rc" -ne 2 ]]; then
        echo "expected exit 2 for ICKPT_KERNELS=bogus, got $rc" >&2
        exit 1
    fi

    # Flight-recorder determinism: the exported trace files (Chrome
    # JSON + JSONL) for a live-instrumented experiment must be
    # byte-identical at 1 and 4 scheduler threads — with the content
    # layer (dedup + delta) forced on, so DedupSkip/DeltaEncode events
    # flow through the recorder in both runs.
    echo "==> repro --trace-out at 1 and 4 scheduler threads (ICKPT_DEDUP=1)"
    rm -rf /tmp/ickpt_trace_t1 /tmp/ickpt_trace_t4
    ICKPT_DEDUP=1 ICKPT_BENCH_RANKS=4 ICKPT_BENCH_SCALE=0.05 ICKPT_BENCH_PERIODS=4 \
        ICKPT_BENCH_THREADS=1 \
        target/release/repro --only "Ablations" --trace-out /tmp/ickpt_trace_t1 \
        >/dev/null 2>/dev/null
    ICKPT_DEDUP=1 ICKPT_BENCH_RANKS=4 ICKPT_BENCH_SCALE=0.05 ICKPT_BENCH_PERIODS=4 \
        ICKPT_BENCH_THREADS=4 \
        target/release/repro --only "Ablations" --trace-out /tmp/ickpt_trace_t4 \
        >/dev/null 2>/dev/null
    run diff -r /tmp/ickpt_trace_t1 /tmp/ickpt_trace_t4

    # Same trace export under the forced scalar backend: the recorded
    # event stream (hashes, dedup skips, delta encodes) must not depend
    # on which kernel tier computed it.
    echo "==> repro --trace-out with ICKPT_KERNELS=scalar (ICKPT_DEDUP=1)"
    rm -rf /tmp/ickpt_trace_scalar
    ICKPT_KERNELS=scalar ICKPT_DEDUP=1 ICKPT_BENCH_RANKS=4 ICKPT_BENCH_SCALE=0.05 \
        ICKPT_BENCH_PERIODS=4 ICKPT_BENCH_THREADS=1 \
        target/release/repro --only "Ablations" --trace-out /tmp/ickpt_trace_scalar \
        >/dev/null 2>/dev/null
    run diff -r /tmp/ickpt_trace_t1 /tmp/ickpt_trace_scalar
    run cargo build --release -p ickpt-bench --bin inspect
    run target/release/inspect --trace \
        /tmp/ickpt_trace_t1/ablations-checkpoint-system.jsonl >/dev/null

    # Event-engine determinism at scale: the extended weak-scaling
    # experiment at 4096 ranks must print byte-identical stdout at 1
    # and 4 sim workers (host wall-clock goes to stderr only).
    echo "==> repro --only 'Figure 5 extended' (4096 ranks) at 1 and 4 sim workers"
    ICKPT_BENCH_EXT_RANKS=4096 ICKPT_SIM_WORKERS=1 \
        target/release/repro --only "Figure 5 extended" >/tmp/ickpt_ext_w1.txt 2>/dev/null
    ICKPT_BENCH_EXT_RANKS=4096 ICKPT_SIM_WORKERS=4 \
        target/release/repro --only "Figure 5 extended" >/tmp/ickpt_ext_w4.txt 2>/dev/null
    run diff /tmp/ickpt_ext_w1.txt /tmp/ickpt_ext_w4.txt

    # Multi-tenant service determinism: the shared-array experiment
    # fans its sweep cells over host threads, yet stdout must be
    # byte-identical at 1 and 4 threads (the service itself is one
    # serial event wheel per cell).
    echo "==> repro --only 'Multi-tenant' at 1 and 4 host threads"
    ICKPT_BENCH_TENANTS=1,4,16 ICKPT_BENCH_SVC_SECONDS=60 ICKPT_BENCH_THREADS=1 \
        target/release/repro --only "Multi-tenant" >/tmp/ickpt_svc_t1.txt 2>/dev/null
    ICKPT_BENCH_TENANTS=1,4,16 ICKPT_BENCH_SVC_SECONDS=60 ICKPT_BENCH_THREADS=4 \
        target/release/repro --only "Multi-tenant" >/tmp/ickpt_svc_t4.txt 2>/dev/null
    run diff /tmp/ickpt_svc_t1.txt /tmp/ickpt_svc_t4.txt

    # Tenant lanes in the flight recorder: the ablation's trace must
    # carry per-tenant tracks, and `inspect --tenants` must fold them
    # into the per-tenant table without erroring.
    echo "==> repro --trace-out tenant tracks + inspect --tenants"
    rm -rf /tmp/ickpt_trace_svc
    ICKPT_BENCH_TENANTS=1,4,16 ICKPT_BENCH_SVC_SECONDS=60 ICKPT_BENCH_THREADS=1 \
        target/release/repro --only "Multi-tenant" --trace-out /tmp/ickpt_trace_svc \
        >/dev/null 2>/dev/null
    svc_jsonl=$(ls /tmp/ickpt_trace_svc/*.jsonl)
    if ! grep -q '"tenant' "$svc_jsonl"; then
        echo "expected tenant tracks in $svc_jsonl" >&2
        exit 1
    fi
    run target/release/inspect --tenants "$svc_jsonl" >/dev/null

    # A malformed tenant sweep must abort with exit status 2.
    echo "==> repro with malformed ICKPT_BENCH_TENANTS must exit 2"
    set +e
    ICKPT_BENCH_TENANTS=4,frogs target/release/repro --only "Multi-tenant" \
        >/dev/null 2>/dev/null
    rc=$?
    set -e
    if [[ "$rc" -ne 2 ]]; then
        echo "expected exit 2 for ICKPT_BENCH_TENANTS=4,frogs, got $rc" >&2
        exit 1
    fi

    # Metrics-plane determinism: with ICKPT_METRICS=on the
    # Prometheus-style text snapshot (printed to stdout and written as
    # <slug>.metrics.txt under --trace-out, so the diff -r covers it)
    # must be byte-identical at 1 and 4 scheduler threads.
    echo "==> repro --only 'table 4' with ICKPT_METRICS=on at 1 and 4 threads"
    rm -rf /tmp/ickpt_metrics_t1 /tmp/ickpt_metrics_t4
    ICKPT_METRICS=on ICKPT_BENCH_RANKS=4 ICKPT_BENCH_SCALE=0.05 ICKPT_BENCH_THREADS=1 \
        target/release/repro --only "table 4" --trace-out /tmp/ickpt_metrics_t1 \
        >/tmp/ickpt_metrics_t1.txt 2>/dev/null
    ICKPT_METRICS=on ICKPT_BENCH_RANKS=4 ICKPT_BENCH_SCALE=0.05 ICKPT_BENCH_THREADS=4 \
        target/release/repro --only "table 4" --trace-out /tmp/ickpt_metrics_t4 \
        >/tmp/ickpt_metrics_t4.txt 2>/dev/null
    # The stdout echoes the --trace-out paths, which differ by design;
    # normalize them so the diff compares only the experiment + snapshot.
    sed -i 's|/tmp/ickpt_metrics_t[14]|OUTDIR|g' \
        /tmp/ickpt_metrics_t1.txt /tmp/ickpt_metrics_t4.txt
    run diff /tmp/ickpt_metrics_t1.txt /tmp/ickpt_metrics_t4.txt
    run diff -r /tmp/ickpt_metrics_t1 /tmp/ickpt_metrics_t4
    # Table 4 is characterization-only (no checkpoint captures), so the
    # live counters it feeds are the tracker's; the capture-path counters
    # are exercised by the inspect --metrics replay below.
    if ! grep -q '^ickpt_tracker_windows_total' \
        /tmp/ickpt_metrics_t1/table-4-*.metrics.txt; then
        echo "expected tracker counters in the metrics snapshot" >&2
        exit 1
    fi

    # Post-hoc metrics view: replay the ablation's JSONL trace into a
    # fresh plane; per-run totals, window series and SLO verdicts must
    # render without erroring.
    run target/release/inspect --metrics \
        /tmp/ickpt_trace_t1/ablations-checkpoint-system.jsonl --windows >/dev/null

    # A malformed ICKPT_METRICS value must abort with exit status 2.
    echo "==> repro with malformed ICKPT_METRICS must exit 2"
    set +e
    ICKPT_METRICS=every-5s target/release/repro --only "table 4" >/dev/null 2>/dev/null
    rc=$?
    set -e
    if [[ "$rc" -ne 2 ]]; then
        echo "expected exit 2 for ICKPT_METRICS=every-5s, got $rc" >&2
        exit 1
    fi

    # PR-over-PR micro-bench drift: compare the two checked-in
    # baselines (deterministic — no benches run here). The wide band
    # catches order-of-magnitude cliffs, not host noise.
    run python3 scripts/bench_delta.py BENCH_PR9.json BENCH_PR10.json --tolerance 100

    # Multilevel redundancy: inject a node loss mid-run, recover the
    # wiped rank by partner reconstruction, and diff the final
    # application state against a failure-free run (byte-identical or
    # the binary exits non-zero).
    run cargo build --release -p ickpt-bench --bin redundancy_smoke
    run target/release/redundancy_smoke
    # And the same loss/reconstruct cycle on the scalar backend: XOR
    # parity encode/reconstruct must be tier-independent too.
    echo "==> redundancy_smoke with ICKPT_KERNELS=scalar"
    run env ICKPT_KERNELS=scalar target/release/redundancy_smoke
}

if [[ "${1:-}" == "--bench-smoke" ]]; then
    bench_smoke
    echo "verify: OK (bench smoke only)"
    exit 0
fi

run cargo build --release
run cargo test -q --workspace
run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
bench_smoke

if [[ "${1:-}" == "--bench" ]]; then
    # Short measurement budget: a smoke pass in seconds, not minutes.
    run cargo bench -q -p ickpt-bench --bench micro -- \
        --measure-ms 100 --save-json /tmp/ickpt_bench.json
fi

echo "verify: OK"
