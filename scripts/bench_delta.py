#!/usr/bin/env python3
"""Compare two ickpt-bench-baseline JSON files and flag regressions.

Usage:
    scripts/bench_delta.py OLD.json NEW.json [--tolerance PCT]
                           [--metric best_ns_per_iter|ns_per_iter]

Both inputs are `cargo bench ... --save-json` outputs (schema
`ickpt-bench-baseline/1`, e.g. the checked-in BENCH_PR<N>.json
baselines). For every bench id present in both files the per-iteration
time delta is printed, worst first; a delta above the tolerance band is
a REGRESSION and makes the script exit 1. Rows only in one file are
listed as added/removed, never failed — new benches are expected as
the codebase grows.

The default metric is `best_ns_per_iter` (fastest observed pass):
single-pass medians on busy CI hosts carry multi-x noise, and the
fastest pass is the closest thing a one-shot run has to a noise floor.
The default tolerance is deliberately wide for the same reason — this
gate exists to catch order-of-magnitude cliffs (an accidental O(n²),
a lost SIMD dispatch), not single-digit drift, which only a quiet
host and many passes can resolve.
"""

import argparse
import json
import sys

SCHEMA = "ickpt-bench-baseline/1"


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != SCHEMA:
        sys.exit(f"{path}: expected schema {SCHEMA!r}, got {data.get('schema')!r}")
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline JSON (previous PR)")
    ap.add_argument("new", help="candidate JSON (this PR)")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=100.0,
        help="max allowed slowdown in percent before a row fails (default 100 = 2x)",
    )
    ap.add_argument(
        "--metric",
        choices=["best_ns_per_iter", "ns_per_iter"],
        default="best_ns_per_iter",
        help="which per-iteration time to compare (default best_ns_per_iter)",
    )
    args = ap.parse_args()

    old = load(args.old)
    new = load(args.new)
    old_by_id = {b["id"]: b for b in old["benches"]}
    new_by_id = {b["id"]: b for b in new["benches"]}

    common = sorted(set(old_by_id) & set(new_by_id))
    added = sorted(set(new_by_id) - set(old_by_id))
    removed = sorted(set(old_by_id) - set(new_by_id))

    rows = []
    for bench_id in common:
        before = old_by_id[bench_id][args.metric]
        after = new_by_id[bench_id][args.metric]
        if before <= 0:
            continue
        delta = 100.0 * (after - before) / before
        rows.append((delta, bench_id, before, after))
    rows.sort(reverse=True)

    print(
        f"bench delta: {args.old} (pr {old.get('pr', '?')}) -> "
        f"{args.new} (pr {new.get('pr', '?')}), metric {args.metric}, "
        f"tolerance +{args.tolerance:g}%"
    )
    width = max((len(r[1]) for r in rows), default=8)
    regressions = []
    for delta, bench_id, before, after in rows:
        flag = ""
        if delta > args.tolerance:
            flag = "  REGRESSION"
            regressions.append(bench_id)
        print(f"  {bench_id:<{width}}  {before:>12.1f} -> {after:>12.1f} ns  {delta:+7.1f}%{flag}")
    if added:
        print(f"  new rows ({len(added)}): " + ", ".join(added))
    if removed:
        print(f"  removed rows ({len(removed)}): " + ", ".join(removed))

    if regressions:
        print(
            f"FAIL: {len(regressions)} row(s) regressed past +{args.tolerance:g}%: "
            + ", ".join(regressions)
        )
        return 1
    print(f"OK: {len(rows)} rows within +{args.tolerance:g}% " f"({len(added)} new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
