//! The cluster's multi-tenant front: mixed tenant fleets derived from
//! the paper's workload calibrations, and per-tenant stall accounting
//! over a finished service run.
//!
//! [`mixed_fleet`] builds the fleet the `multi_tenant` experiment
//! contends: tenants cycle through all nine calibrated workloads
//! (Sage footprints down to NAS kernels) with deterministic
//! pseudo-random QoS weights, so a fleet of N is reproducible from
//! `(n, scale, seed)` alone — and, because each
//! [`TenantProfile`](ickpt_svc::TenantProfile) keys its jitter and
//! stagger off its own tenant id, growing the fleet never perturbs the
//! tenants already in it.
//!
//! [`TenantStallAccount`] folds a [`ServiceReport`] into the per-job
//! ledger the cluster layer reports on: how long each job was blocked
//! on the shared store (total, p50, p99, worst case), what fraction of
//! its time it actually computed, and its share of the drained bytes.

use ickpt_apps::Workload;
use ickpt_obs::Lane;
use ickpt_sim::{SimDuration, SplitMix64};
use ickpt_svc::{ServiceReport, TenantProfile};

/// Weights assigned by [`mixed_fleet`] span 1..=MAX_FLEET_WEIGHT.
pub const MAX_FLEET_WEIGHT: u32 = 4;

/// One tenant's identity within a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantHandle {
    /// Fleet index (also the service's tenant id).
    pub id: u32,
    /// Traffic shape and QoS weight.
    pub profile: TenantProfile,
}

impl TenantHandle {
    /// The flight-recorder lane this tenant's service events land on.
    pub fn lane(&self) -> Lane {
        Lane::Tenant(self.id)
    }
}

/// A deterministic mixed fleet of `n` tenants at memory scale `scale`:
/// workloads cycle through [`Workload::ALL`], weights are drawn from
/// `1..=`[`MAX_FLEET_WEIGHT`] by a stream keyed on `(seed, id)` only.
pub fn mixed_fleet(n: usize, scale: f64, seed: u64) -> Vec<TenantHandle> {
    (0..n)
        .map(|id| {
            let workload = Workload::ALL[id % Workload::ALL.len()];
            let mut rng = SplitMix64::new(seed ^ ((id as u64) << 24) ^ 0xf1ee_7000);
            let weight = rng.next_range(1, MAX_FLEET_WEIGHT as u64 + 1) as u32;
            TenantHandle {
                id: id as u32,
                profile: TenantProfile::from_workload(workload, scale, weight),
            }
        })
        .collect()
}

/// The profiles of a fleet, in service order.
pub fn fleet_profiles(fleet: &[TenantHandle]) -> Vec<TenantProfile> {
    fleet.iter().map(|h| h.profile).collect()
}

/// One tenant's stall ledger (all integer, report-stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStall {
    /// Tenant id.
    pub id: u32,
    /// Completed checkpoints.
    pub checkpoints: u64,
    /// Admission deferrals.
    pub rejections: u64,
    /// Total time blocked on the shared store.
    pub total: SimDuration,
    /// Median blocked interval (nearest-rank).
    pub p50: SimDuration,
    /// 99th-percentile blocked interval (nearest-rank).
    pub p99: SimDuration,
    /// Worst single blocked interval.
    pub max: SimDuration,
    /// Compute fraction in basis points (10000 = never blocked).
    pub efficiency_bp: u64,
    /// Share of the fleet's drained bytes, basis points.
    pub drained_share_bp: u64,
}

/// Per-tenant stall accounting over a finished service run. See the
/// module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStallAccount {
    /// Per-tenant ledgers, tenant order.
    pub tenants: Vec<TenantStall>,
}

impl TenantStallAccount {
    /// Fold a service report into the ledger.
    pub fn from_report(report: &ServiceReport) -> Self {
        let fleet_drained = report.aggregate.drained_bytes.max(1);
        let tenants = report
            .tenants
            .iter()
            .map(|t| TenantStall {
                id: t.id,
                checkpoints: t.checkpoints,
                rejections: t.rejections,
                total: t.stall_total(),
                p50: t.stall_percentile(50),
                p99: t.stall_percentile(99),
                max: t.stall_percentile(100),
                efficiency_bp: t.efficiency_bp(),
                drained_share_bp: (t.drained_bytes as u128 * 10_000 / fleet_drained as u128) as u64,
            })
            .collect();
        TenantStallAccount { tenants }
    }

    /// The worst p99 stall across the fleet (the contention headline).
    pub fn worst_p99(&self) -> SimDuration {
        self.tenants.iter().map(|t| t.p99).max().unwrap_or(SimDuration::ZERO)
    }

    /// The lowest compute fraction across the fleet, basis points.
    pub fn worst_efficiency_bp(&self) -> u64 {
        self.tenants.iter().map(|t| t.efficiency_bp).min().unwrap_or(10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ickpt_obs::Recorder;
    use ickpt_svc::{run_service, ServiceConfig};

    #[test]
    fn mixed_fleet_is_deterministic_and_prefix_stable() {
        let a = mixed_fleet(12, 0.01, 7);
        let b = mixed_fleet(12, 0.01, 7);
        assert_eq!(a, b);
        // Growing the fleet keeps the existing tenants bit-identical.
        let grown = mixed_fleet(24, 0.01, 7);
        assert_eq!(&grown[..12], &a[..]);
        assert!(a.iter().all(|h| (1..=MAX_FLEET_WEIGHT).contains(&h.profile.weight)));
        // All nine workloads appear.
        let kinds: std::collections::BTreeSet<&str> =
            a.iter().map(|h| h.profile.workload.calib().name).collect();
        assert_eq!(kinds.len(), 9);
    }

    #[test]
    fn stall_account_shares_sum_to_the_fleet() {
        let fleet = mixed_fleet(6, 0.002, 11);
        let cfg = ServiceConfig::new(fleet_profiles(&fleet), SimDuration::from_secs(30))
            .with_fair_admission(2);
        let report = run_service(&cfg, &Recorder::disabled());
        let account = TenantStallAccount::from_report(&report);
        assert_eq!(account.tenants.len(), 6);
        let share: u64 = account.tenants.iter().map(|t| t.drained_share_bp).sum();
        assert!(share <= 10_000, "rounding only loses basis points: {share}");
        assert!(share > 10_000 - 6, "within one bp per tenant: {share}");
        for t in &account.tenants {
            assert!(t.p50 <= t.p99 && t.p99 <= t.max);
        }
        assert!(account.worst_efficiency_bp() <= 10_000);
    }
}
