//! Event-driven characterization engine: thousands of ranks on a
//! fixed worker pool.
//!
//! The reference path in [`super::characterize_model_threaded`] runs
//! one OS thread per rank; at 16k ranks that drowns the host scheduler.
//! This engine keeps every rank as an explicit state machine
//! ([`RankSm`]) stepped by at most `workers` threads, scheduled through
//! the calendar-queue [`EventWheel`].
//!
//! ## Determinism at any worker count
//!
//! The main loop alternates two phases:
//!
//! 1. **Advance** (parallel): every runnable rank executes on purely
//!    rank-local state until it blocks on a receive or a collective.
//!    Sends accumulate in a rank-local outbox; nothing cross-rank is
//!    touched, so the host interleaving cannot matter.
//! 2. **Resolve** (serial, in wheel order): outboxes are delivered to
//!    receiver queues and collective entries are folded, in the
//!    deterministic `(time, seq)` order the wheel popped the batch.
//!
//! Per-`(src, tag)` message order equals sender program order, and all
//! collective folds use the commutative/associative [`Combine`]
//! operators, so the run is byte-identical to the threaded reference —
//! the cost formulas themselves are shared with
//! [`Endpoint`](ickpt_net::comm::Endpoint) through the pure
//! [`NetConfig`] helpers.
//!
//! A blocked rank consumes no worker until the resolver wakes it:
//! receive wakes on matching delivery, collectives wake when the last
//! participant joins the round. Rendezvous semantics guarantee at most
//! one collective round is open at a time (no rank can run ahead into
//! a second collective while any rank still blocks on the first), so a
//! single round accumulator suffices.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use ickpt_apps::step::{AppModel, Step};
use ickpt_core::checkpoint::ContentStats;
use ickpt_core::coordinator::VoteFlags;
use ickpt_core::tracked_space::TrackedSpace;
use ickpt_core::tracker::WriteTracker;
use ickpt_mem::{pages_for_bytes, AddressSpace, DataLayout, PageRange, SparseSpace};
use ickpt_net::{NetConfig, NetError};
use ickpt_obs::{Event, Lane, Recorder};
use ickpt_sim::rendezvous::Combine;
use ickpt_sim::{BandwidthDevice, EventWheel, SimDuration, SimTime};

use super::{
    summarize_obs, BoundaryRecord, CharacterizationConfig, RankReport, RunError, RunOutcome,
    RunReport,
};

/// Below this batch size the scoped-thread fan-out costs more than it
/// saves; advance inline instead.
const PAR_BATCH_MIN: usize = 64;

/// Resolve the worker count: explicit config, then the
/// `ICKPT_SIM_WORKERS` environment knob, then host parallelism.
pub(crate) fn resolve_workers(explicit: Option<usize>) -> usize {
    if let Some(w) = explicit {
        return w.max(1);
    }
    if let Ok(s) = std::env::var("ICKPT_SIM_WORKERS") {
        if let Ok(w) = s.trim().parse::<usize>() {
            return w.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// An in-flight eager-send: the receiver charges the bounce-buffer
/// copy from `arrival` exactly as [`NetConfig::recv_complete_time`]
/// does on the threaded path.
struct EngMsg {
    src: usize,
    tag: u32,
    bytes: u64,
    arrival: SimTime,
}

/// The collective a rank is blocked in, with the rank-local context
/// needed to finish the operation once the round completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollOp {
    Barrier,
    Allreduce {
        bytes: u64,
    },
    AllToAll {
        bytes_per_pair: u64,
        into: Option<PageRange>,
        version: u64,
    },
    /// The iteration-boundary vote allreduce (16 bytes, OR-combined).
    Vote {
        votes: u64,
        pre: SimTime,
        iterations: u64,
    },
}

impl CollOp {
    /// Round signature: every participant of one round must enter the
    /// same collective with the same payload size.
    fn sig(&self) -> (u8, u64) {
        match self {
            CollOp::Barrier => (0, 0),
            CollOp::Allreduce { bytes } => (1, *bytes),
            CollOp::AllToAll { bytes_per_pair, .. } => (2, *bytes_per_pair),
            CollOp::Vote { .. } => (3, 16),
        }
    }

    fn combine(&self) -> Combine {
        match self {
            CollOp::Vote { .. } => Combine::Or,
            _ => Combine::Max,
        }
    }

    fn contribution(&self) -> u64 {
        match self {
            CollOp::Vote { votes, .. } => *votes,
            _ => 0,
        }
    }
}

/// Why a rank yielded its worker.
#[derive(Debug, Clone, Copy)]
enum Blocked {
    /// Runnable: executing steps or phase transitions.
    Running,
    /// Waiting on a matching message.
    Recv { from: usize, tag: u32, into: Option<PageRange>, version: u64 },
    /// Waiting for a collective round to complete.
    Coll(CollOp),
    /// Finished (or failed; see `error`).
    Done,
}

/// Result of a completed collective round, handed to every blocked
/// participant.
#[derive(Debug, Clone, Copy)]
struct RoundResult {
    /// Entry time of the last participant.
    time: SimTime,
    /// Combined value.
    value: u64,
}

/// The open collective round: rendezvous semantics admit at most one.
struct Round {
    joined: usize,
    max_time: SimTime,
    value: u64,
    sig: (u8, u64),
}

fn join_round(round: &mut Option<Round>, op: CollOp, entered: SimTime) {
    let sig = op.sig();
    let combine = op.combine();
    let contrib = op.contribution();
    match round {
        None => {
            *round = Some(Round {
                joined: 1,
                max_time: entered,
                value: combine.apply(combine.identity(), contrib),
                sig,
            });
        }
        Some(rd) => {
            assert_eq!(
                rd.sig, sig,
                "collective mismatch: ranks entered different collectives in one round"
            );
            rd.joined += 1;
            rd.max_time = rd.max_time.max(entered);
            rd.value = combine.apply(rd.value, contrib);
        }
    }
}

/// Where the rank is in its phase script.
enum PhaseState {
    /// `model.init` not yet consumed.
    NeedInit,
    /// Executing a phase from `model.next_phase` (or init, which never
    /// ends an iteration).
    Loaded { ends_iteration: bool },
}

/// Shared read-only run parameters.
struct EngineCtx<'a> {
    net: &'a NetConfig,
    nranks: usize,
    run_for: SimDuration,
    max_iterations: Option<u64>,
    stretch_overhead: bool,
    obs: &'a Recorder,
}

/// One rank as an event-driven state machine. All fields are
/// rank-local; the resolver alone moves data between machines.
struct RankSm {
    rank: usize,
    space: SparseSpace,
    tracker: WriteTracker,
    model: Box<dyn AppModel>,
    clock: SimTime,
    started_at: SimTime,
    nic: BandwidthDevice,
    steps: Vec<Step>,
    step_idx: usize,
    version: u64,
    phase: PhaseState,
    pending: HashMap<(usize, u32), VecDeque<EngMsg>>,
    outbox: Vec<(usize, EngMsg)>,
    bytes_received: u64,
    blocked: Blocked,
    completion: Option<RoundResult>,
    boundaries: Vec<BoundaryRecord>,
    /// Keep only the latest boundary record (compact report detail).
    compact_boundaries: bool,
    /// Whether this rank is scheduled (or queued to be) in the wheel.
    in_wheel: bool,
    error: Option<RunError>,
}

impl RankSm {
    #[allow(clippy::too_many_arguments)]
    fn new(
        rank: usize,
        space: SparseSpace,
        tracker: WriteTracker,
        model: Box<dyn AppModel>,
        nic: BandwidthDevice,
        compact_boundaries: bool,
    ) -> Self {
        Self {
            rank,
            space,
            tracker,
            model,
            clock: SimTime::ZERO,
            started_at: SimTime::ZERO,
            nic,
            steps: Vec::new(),
            step_idx: 0,
            version: 0,
            phase: PhaseState::NeedInit,
            pending: HashMap::new(),
            outbox: Vec::new(),
            bytes_received: 0,
            blocked: Blocked::Running,
            completion: None,
            boundaries: Vec::new(),
            compact_boundaries,
            in_wheel: false,
            error: None,
        }
    }

    /// Run until the rank blocks (or finishes). Touches only rank-local
    /// state: safe to call from any worker thread.
    fn advance(&mut self, ctx: &EngineCtx<'_>) {
        if let Err(e) = self.advance_inner(ctx) {
            self.error = Some(e);
            self.blocked = Blocked::Done;
        }
    }

    fn advance_inner(&mut self, ctx: &EngineCtx<'_>) -> Result<(), RunError> {
        loop {
            match self.blocked {
                Blocked::Done => return Ok(()),
                Blocked::Coll(op) => {
                    let Some(res) = self.completion.take() else { return Ok(()) };
                    self.blocked = Blocked::Running;
                    self.complete_coll(op, res, ctx)?;
                }
                Blocked::Recv { from, tag, into, version } => {
                    let msg = self.pending.get_mut(&(from, tag)).and_then(|q| q.pop_front());
                    let Some(msg) = msg else { return Ok(()) };
                    self.blocked = Blocked::Running;
                    self.complete_recv(msg, into, version, ctx)?;
                }
                Blocked::Running => self.step(ctx)?,
            }
        }
    }

    /// Execute one step, or transition phases when the script ran out.
    fn step(&mut self, ctx: &EngineCtx<'_>) -> Result<(), RunError> {
        if self.step_idx >= self.steps.len() {
            return match self.phase {
                PhaseState::NeedInit => self.load_init(),
                PhaseState::Loaded { ends_iteration: false } => self.load_next_phase(),
                PhaseState::Loaded { ends_iteration: true } => {
                    self.begin_boundary(ctx);
                    Ok(())
                }
            };
        }
        let steps = std::mem::take(&mut self.steps);
        let res = self.exec_step(&steps[self.step_idx], ctx);
        self.steps = steps;
        self.step_idx += 1;
        res
    }

    fn load_init(&mut self) -> Result<(), RunError> {
        let phase = {
            let mut ts = TrackedSpace::new(&mut self.space, &mut self.tracker);
            self.model.init(&mut ts)?
        };
        self.version = self.model.iterations_done() + 1;
        self.steps = phase.steps;
        self.step_idx = 0;
        // run_init never coordinates an iteration boundary, matching
        // the threaded reference.
        self.phase = PhaseState::Loaded { ends_iteration: false };
        Ok(())
    }

    fn load_next_phase(&mut self) -> Result<(), RunError> {
        let phase = {
            let mut ts = TrackedSpace::new(&mut self.space, &mut self.tracker);
            self.model.next_phase(&mut ts)?
        };
        self.version = self.model.iterations_done() + 1;
        self.steps = phase.steps;
        self.step_idx = 0;
        self.phase = PhaseState::Loaded { ends_iteration: phase.ends_iteration };
        Ok(())
    }

    /// First half of the iteration boundary: compute the local vote and
    /// enter the boundary allreduce. The second half runs in
    /// `complete_coll` when the round closes.
    fn begin_boundary(&mut self, ctx: &EngineCtx<'_>) {
        let pre = self.clock;
        self.tracker.mark_iteration(self.clock);
        let iterations = self.model.iterations_done();
        let mut votes = VoteFlags::none();
        let past_time = self.clock.saturating_sub(SimTime::ZERO) >= ctx.run_for;
        let past_iters = ctx.max_iterations.is_some_and(|m| iterations >= m);
        if past_time || past_iters {
            votes = votes.with(VoteFlags::STOP);
        }
        self.blocked = Blocked::Coll(CollOp::Vote { votes: votes.0, pre, iterations });
    }

    fn exec_step(&mut self, step: &Step, ctx: &EngineCtx<'_>) -> Result<(), RunError> {
        let version = self.version;
        match step {
            Step::Compute { duration, pattern } => {
                let start = self.clock;
                let end = start + *duration;
                let dur_s = duration.as_secs_f64();
                let mut cursor = start;
                let mut faults = 0u64;
                if duration.is_zero() {
                    self.tracker.advance_to(start);
                    let mut ts = TrackedSpace::new(&mut self.space, &mut self.tracker);
                    for r in pattern.slice(0.0, 1.0) {
                        faults += ts.touch(r, version);
                    }
                } else {
                    while cursor < end {
                        self.tracker.advance_to(cursor);
                        let seg_end = end.min(self.tracker.next_alarm_time());
                        let f0 = (cursor - start).as_secs_f64() / dur_s;
                        let f1 = (seg_end - start).as_secs_f64() / dur_s;
                        let mut ts = TrackedSpace::new(&mut self.space, &mut self.tracker);
                        for r in pattern.slice(f0.min(1.0), f1.min(1.0)) {
                            faults += ts.touch(r, version);
                        }
                        cursor = seg_end;
                    }
                }
                self.clock = end;
                if ctx.stretch_overhead {
                    self.clock += self.tracker.fault_cost(faults);
                }
            }
            Step::Send { to, tag, bytes } => {
                let handoff = ctx.net.send_handoff_time(self.clock, *bytes);
                let arrival = self.nic.transfer(self.clock, *bytes);
                self.outbox
                    .push((*to, EngMsg { src: self.rank, tag: *tag, bytes: *bytes, arrival }));
                self.clock = handoff;
            }
            Step::Recv { from, tag, into } => {
                self.blocked = Blocked::Recv { from: *from, tag: *tag, into: *into, version };
            }
            Step::Barrier => {
                self.blocked = Blocked::Coll(CollOp::Barrier);
            }
            Step::Allreduce { bytes } => {
                self.blocked = Blocked::Coll(CollOp::Allreduce { bytes: *bytes });
            }
            Step::AllToAll { bytes_per_pair, into } => {
                self.blocked = Blocked::Coll(CollOp::AllToAll {
                    bytes_per_pair: *bytes_per_pair,
                    into: *into,
                    version,
                });
            }
        }
        Ok(())
    }

    /// Consume a matched message: same math as `Endpoint::recv` +
    /// the threaded runner's `Step::Recv` arm.
    fn complete_recv(
        &mut self,
        msg: EngMsg,
        into: Option<PageRange>,
        version: u64,
        ctx: &EngineCtx<'_>,
    ) -> Result<(), RunError> {
        self.clock = ctx.net.recv_complete_time(self.clock, msg.arrival, msg.bytes);
        self.bytes_received += msg.bytes;
        self.tracker.advance_to(self.clock);
        self.tracker.note_received(msg.bytes);
        if let Some(dst) = into {
            let pages = pages_for_bytes(msg.bytes).min(dst.len).max(1);
            let r = PageRange::new(dst.start, pages);
            let mut ts = TrackedSpace::new(&mut self.space, &mut self.tracker);
            ts.touch(r, version);
        }
        Ok(())
    }

    /// Finish a collective whose round closed at `res.time`: same math
    /// as the `Endpoint` collective plus the threaded runner's arm.
    fn complete_coll(
        &mut self,
        op: CollOp,
        res: RoundResult,
        ctx: &EngineCtx<'_>,
    ) -> Result<(), RunError> {
        match op {
            CollOp::Barrier => {
                self.clock = ctx.net.barrier_complete_time(res.time, ctx.nranks);
                self.tracker.advance_to(self.clock);
            }
            CollOp::Allreduce { bytes } => {
                let recv = NetConfig::allreduce_recv_bytes(ctx.nranks, bytes);
                self.bytes_received += recv;
                self.clock = ctx.net.allreduce_complete_time(res.time, ctx.nranks, bytes);
                self.tracker.advance_to(self.clock);
                self.tracker.note_received(recv);
            }
            CollOp::AllToAll { bytes_per_pair, into, version } => {
                let vol = NetConfig::alltoall_volume(ctx.nranks, bytes_per_pair);
                self.bytes_received += vol;
                self.clock = ctx.net.alltoall_complete_time(res.time, ctx.nranks, bytes_per_pair);
                self.tracker.advance_to(self.clock);
                self.tracker.note_received(vol);
                if let Some(dst) = into {
                    let pages = pages_for_bytes(vol).min(dst.len).max(1);
                    let r = PageRange::new(dst.start, pages);
                    let mut ts = TrackedSpace::new(&mut self.space, &mut self.tracker);
                    ts.touch(r, version);
                }
            }
            CollOp::Vote { pre, iterations, .. } => {
                let recv = NetConfig::allreduce_recv_bytes(ctx.nranks, 16);
                self.bytes_received += recv;
                self.clock = ctx.net.allreduce_complete_time(res.time, ctx.nranks, 16);
                self.tracker.advance_to(self.clock);
                self.tracker.note_received(recv);
                self.tracker.snapshot_residue(self.clock);
                if self.compact_boundaries {
                    self.boundaries.clear();
                }
                self.boundaries.push(BoundaryRecord {
                    pre,
                    post: self.clock,
                    footprint_pages: self.tracker.footprint_pages(),
                    total_faults: self.tracker.total_faults(),
                    overhead: self.tracker.overhead(),
                    bytes_received: self.bytes_received,
                });
                ctx.obs.emit(
                    Lane::Rank(self.rank as u32),
                    self.clock,
                    Event::IterationBoundary { iteration: iterations },
                );
                let global = VoteFlags(res.value);
                debug_assert!(!global.has(VoteFlags::FAIL), "engine runs are failure-free");
                if global.has(VoteFlags::STOP) {
                    self.tracker.finish(self.clock);
                    self.blocked = Blocked::Done;
                } else {
                    self.load_next_phase()?;
                }
            }
        }
        Ok(())
    }

    fn into_report(mut self) -> RankReport {
        let trace = self.tracker.records_trace().then(|| self.tracker.take_trace());
        RankReport {
            rank: self.rank,
            samples: self.tracker.samples().to_vec(),
            epoch_samples: self.tracker.epoch_samples().to_vec(),
            iteration_samples: self.tracker.iteration_samples().to_vec(),
            total_faults: self.tracker.total_faults(),
            overhead: self.tracker.overhead(),
            started_at: self.started_at,
            final_time: self.clock,
            iterations: self.model.iterations_done(),
            bytes_received: self.bytes_received,
            footprint_pages: self.tracker.footprint_pages(),
            content_digest: None,
            checkpoint_bytes: 0,
            checkpoints: 0,
            checkpoint_stall: SimDuration::ZERO,
            commit_lag: SimDuration::ZERO,
            excluded_pages: self.tracker.excluded_pages(),
            content: ContentStats::default(),
            last_committed: None,
            summary: *self.tracker.sample_summary(),
            boundaries: self.boundaries,
            trace,
            tier: None,
        }
    }
}

/// Event-driven characterization: byte-identical results to
/// [`super::characterize_model_threaded`] at any worker count.
pub(crate) fn characterize_event<F>(
    cfg: &CharacterizationConfig,
    layout: DataLayout,
    build: &F,
) -> RunReport
where
    F: Fn(usize) -> Box<dyn AppModel> + Sync,
{
    let nranks = cfg.nranks;
    assert!(nranks > 0, "characterization needs at least one rank");
    let workers = resolve_workers(cfg.workers);
    cfg.obs.emit(Lane::Run, SimTime::ZERO, Event::RunStart { ranks: nranks as u32 });
    let ctx = EngineCtx {
        net: &cfg.net,
        nranks,
        run_for: cfg.run_for,
        max_iterations: None,
        stretch_overhead: cfg.stretch_overhead,
        obs: &cfg.obs,
    };
    let mut sms = build_ranks(cfg, layout, build, workers);

    let mut wheel: EventWheel<usize> = EventWheel::new();
    for (r, m) in sms.iter_mut().enumerate() {
        m.get_mut().expect("lock poisoned").in_wheel = true;
        wheel.push(SimTime::ZERO, r);
    }
    let mut round: Option<Round> = None;
    let mut batch: Vec<usize> = Vec::with_capacity(nranks);
    let mut wake: Vec<(SimTime, usize)> = Vec::new();

    while !wheel.is_empty() {
        batch.clear();
        while let Some((_, r)) = wheel.pop() {
            batch.push(r);
        }

        // Advance phase: rank-local, order-independent.
        if workers > 1 && batch.len() >= PAR_BATCH_MIN {
            let chunk = batch.len().div_ceil(workers);
            let sms_ref = &sms;
            let ctx_ref = &ctx;
            std::thread::scope(|s| {
                for ch in batch.chunks(chunk) {
                    s.spawn(move || {
                        for &r in ch {
                            sms_ref[r].lock().expect("lock poisoned").advance(ctx_ref);
                        }
                    });
                }
            });
        } else {
            for &r in &batch {
                sms[r].get_mut().expect("lock poisoned").advance(&ctx);
            }
        }

        // Resolve phase: serial, in deterministic batch order.
        wake.clear();
        for &r in &batch {
            sms[r].get_mut().expect("lock poisoned").in_wheel = false;
        }
        for &r in &batch {
            let (outbox, join) = {
                let sm = sms[r].get_mut().expect("lock poisoned");
                if let Some(e) = sm.error.take() {
                    panic!("characterization run failed: {e}");
                }
                let join = match sm.blocked {
                    Blocked::Coll(op) => {
                        debug_assert!(sm.completion.is_none());
                        Some((op, sm.clock))
                    }
                    _ => None,
                };
                (std::mem::take(&mut sm.outbox), join)
            };
            for (dst, msg) in outbox {
                assert!(dst < nranks, "rank {r} sent to unknown rank {dst}");
                let d = sms[dst].get_mut().expect("lock poisoned");
                let wanted = matches!(
                    d.blocked,
                    Blocked::Recv { from, tag, .. } if from == msg.src && tag == msg.tag
                );
                d.pending.entry((msg.src, msg.tag)).or_default().push_back(msg);
                if wanted && !d.in_wheel {
                    d.in_wheel = true;
                    wake.push((d.clock, dst));
                }
            }
            if let Some((op, entered)) = join {
                join_round(&mut round, op, entered);
            }
        }
        if round.as_ref().is_some_and(|rd| rd.joined == nranks) {
            let rd = round.take().expect("round present");
            for (r, m) in sms.iter_mut().enumerate() {
                let sm = m.get_mut().expect("lock poisoned");
                debug_assert!(matches!(sm.blocked, Blocked::Coll(_)));
                sm.completion = Some(RoundResult { time: rd.max_time, value: rd.value });
                if !sm.in_wheel {
                    sm.in_wheel = true;
                    wake.push((rd.max_time, r));
                }
            }
        }
        for &(t, r) in &wake {
            wheel.push(t, r);
        }
    }

    // The wheel drained: every rank must have finished, otherwise the
    // script deadlocked (a recv nobody sends, or a partial collective).
    for m in &mut sms {
        let sm = m.get_mut().expect("lock poisoned");
        match sm.blocked {
            Blocked::Done => {}
            Blocked::Recv { from, tag, .. } => {
                let e = RunError::Net(NetError::RecvTimeout { rank: sm.rank, from, tag });
                panic!("characterization run failed: {e}");
            }
            _ => panic!(
                "characterization run failed: rank {} stalled in a collective \
                 (mismatched script?)",
                sm.rank
            ),
        }
    }

    let ranks: Vec<RankReport> =
        sms.into_iter().map(|m| m.into_inner().expect("lock poisoned").into_report()).collect();
    RunReport {
        outcome: RunOutcome::Completed,
        ranks,
        attempts: 1,
        wasted: SimDuration::ZERO,
        recoveries: Vec::new(),
        drain: None,
        obs: summarize_obs(&cfg.obs),
    }
}

/// Construct all rank state machines, fanning the (allocation-heavy)
/// builds across the worker pool at high rank counts.
fn build_ranks<F>(
    cfg: &CharacterizationConfig,
    layout: DataLayout,
    build: &F,
    workers: usize,
) -> Vec<Mutex<RankSm>>
where
    F: Fn(usize) -> Box<dyn AppModel> + Sync,
{
    let mk = |rank: usize| {
        let space = SparseSpace::new(layout);
        let tracker = WriteTracker::new(
            layout.capacity_pages(),
            space.mapped_pages(),
            cfg.tracker_config(rank),
        );
        let compact = !cfg.detail.rank_is_full(rank, cfg.trace_ranks);
        Mutex::new(RankSm::new(rank, space, tracker, build(rank), cfg.net.build_nic(), compact))
    };
    if workers <= 1 || cfg.nranks < 256 {
        return (0..cfg.nranks).map(mk).collect();
    }
    let chunk = cfg.nranks.div_ceil(workers);
    std::thread::scope(|s| {
        let mk = &mk;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(cfg.nranks);
                let hi = ((w + 1) * chunk).min(cfg.nranks);
                s.spawn(move || (lo..hi).map(mk).collect::<Vec<_>>())
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("rank build panicked")).collect()
    })
}

// Tests for the engine live in `tests/` (cross-path byte-identity and
// scheduler property suites); unit coverage here sticks to the pieces
// with no cross-path oracle.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_workers_explicit_wins() {
        assert_eq!(resolve_workers(Some(3)), 3);
        assert_eq!(resolve_workers(Some(0)), 1);
    }

    #[test]
    fn coll_signatures_distinguish_ops() {
        let a = CollOp::Allreduce { bytes: 64 };
        let b = CollOp::Allreduce { bytes: 128 };
        assert_ne!(a.sig(), b.sig());
        assert_ne!(CollOp::Barrier.sig(), a.sig());
        assert_eq!(
            CollOp::Vote { votes: 1, pre: SimTime::ZERO, iterations: 0 }.sig(),
            CollOp::Vote { votes: 9, pre: SimTime::ZERO, iterations: 4 }.sig(),
        );
    }

    #[test]
    fn round_folds_votes_with_or() {
        let mut round = None;
        let op = |v: u64| CollOp::Vote { votes: v, pre: SimTime::ZERO, iterations: 0 };
        join_round(&mut round, op(0b01), SimTime(5));
        join_round(&mut round, op(0b10), SimTime(3));
        let rd = round.unwrap();
        assert_eq!(rd.joined, 2);
        assert_eq!(rd.max_time, SimTime(5));
        assert_eq!(rd.value, 0b11);
    }
}
