//! Report detail levels and hierarchical report aggregation.
//!
//! Petascale runs cannot afford per-rank sample series: at 16k ranks a
//! few hundred windows each, the flat report would cost gigabytes and
//! the flat all-to-root merge would serialize on one core. This module
//! provides:
//!
//! * [`ReportDetail`] — how much per-rank history a characterization
//!   run retains. `Full` keeps everything (the historical behaviour);
//!   `Compact` keeps exact integer summaries plus a bounded sample
//!   reservoir on every rank except rank 0 and traced ranks (which the
//!   figure pipelines read directly).
//! * [`ClusterAggregate`] — the integer-only cluster roll-up, merged
//!   through [`ickpt_sim::tree_reduce`] in fan-in groups of
//!   [`DEFAULT_REDUCE_ARITY`]. Every field uses associative integer
//!   arithmetic, so the tree result is byte-identical to a flat fold at
//!   any arity — the property suite pins this.

use ickpt_core::metrics::SampleSummary;
use ickpt_sim::{tree_reduce, SimDuration, SimTime};

use super::RankReport;

/// Default fan-in of the report aggregation tree (SCR-style group
/// size: 32 leaves per intermediate node).
pub const DEFAULT_REDUCE_ARITY: usize = 32;

/// How much per-rank detail a characterization run retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportDetail {
    /// Every rank keeps its full sample series and boundary history.
    #[default]
    Full,
    /// Bounded per-rank state: ranks other than rank 0 and traced
    /// ranks keep a decimated reservoir of at most `reservoir` samples
    /// (plus the exact [`SampleSummary`]) and only their latest
    /// boundary record. Figure pipelines that read rank 0 are
    /// unaffected.
    Compact {
        /// Maximum samples per compacted rank.
        reservoir: usize,
    },
}

impl ReportDetail {
    /// Compact retention with the default 128-sample reservoir.
    pub fn compact() -> Self {
        ReportDetail::Compact { reservoir: 128 }
    }

    /// Whether this rank keeps full detail under this policy.
    /// Rank 0 and traced ranks always do.
    pub fn rank_is_full(&self, rank: usize, trace_ranks: usize) -> bool {
        matches!(self, ReportDetail::Full) || rank == 0 || rank < trace_ranks
    }
}

/// Cluster-wide integer aggregate of per-rank reports.
///
/// All fields are associative integer folds (saturating sums, maxes),
/// so merging is order-independent and tree-reduction at any arity
/// matches the flat fold bit for bit. Floating-point derived values
/// (MB, MB/s) belong at render time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterAggregate {
    /// Ranks aggregated.
    pub ranks: u64,
    /// Sum of per-rank fault totals.
    pub total_faults: u64,
    /// Sum of per-rank bytes received.
    pub total_bytes_received: u64,
    /// Sum of per-rank final footprints, in pages.
    pub total_footprint_pages: u64,
    /// Largest per-rank footprint, in pages.
    pub max_footprint_pages: u64,
    /// Largest iteration count (ranks of a bulk-synchronous run agree,
    /// but the fold must not assume it).
    pub max_iterations: u64,
    /// Latest per-rank final time — the run's wall-clock in virtual
    /// time.
    pub max_final_time: SimTime,
    /// Largest per-rank fault-handling overhead.
    pub max_overhead: SimDuration,
    /// Sum of checkpoint bytes written (fault-tolerant runs).
    pub total_checkpoint_bytes: u64,
    /// Merged window summaries across all ranks.
    pub summary: SampleSummary,
}

impl ClusterAggregate {
    /// The aggregate of a single rank report.
    pub fn from_rank(r: &RankReport) -> Self {
        Self {
            ranks: 1,
            total_faults: r.total_faults,
            total_bytes_received: r.bytes_received,
            total_footprint_pages: r.footprint_pages,
            max_footprint_pages: r.footprint_pages,
            max_iterations: r.iterations,
            max_final_time: r.final_time,
            max_overhead: r.overhead,
            total_checkpoint_bytes: r.checkpoint_bytes,
            summary: r.summary,
        }
    }

    /// Merge another aggregate into this one (associative and
    /// commutative).
    pub fn merge(&mut self, other: &ClusterAggregate) {
        self.ranks = self.ranks.saturating_add(other.ranks);
        self.total_faults = self.total_faults.saturating_add(other.total_faults);
        self.total_bytes_received =
            self.total_bytes_received.saturating_add(other.total_bytes_received);
        self.total_footprint_pages =
            self.total_footprint_pages.saturating_add(other.total_footprint_pages);
        self.max_footprint_pages = self.max_footprint_pages.max(other.max_footprint_pages);
        self.max_iterations = self.max_iterations.max(other.max_iterations);
        self.max_final_time = self.max_final_time.max(other.max_final_time);
        self.max_overhead = self.max_overhead.max(other.max_overhead);
        self.total_checkpoint_bytes =
            self.total_checkpoint_bytes.saturating_add(other.total_checkpoint_bytes);
        self.summary.merge(&other.summary);
    }

    /// Mean footprint per rank in pages (render-time only).
    pub fn avg_footprint_pages(&self) -> f64 {
        if self.ranks == 0 {
            0.0
        } else {
            self.total_footprint_pages as f64 / self.ranks as f64
        }
    }
}

/// Reduce per-rank reports through a fan-in tree of the given arity
/// (see [`DEFAULT_REDUCE_ARITY`]). Returns the zero aggregate for an
/// empty report list.
pub fn reduce_reports(reports: &[RankReport], arity: usize) -> ClusterAggregate {
    tree_reduce(reports.iter().map(ClusterAggregate::from_rank).collect(), arity, |a, b| {
        a.merge(&b)
    })
    .unwrap_or_default()
}
