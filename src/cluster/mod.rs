//! The cluster runner: application models on rank threads over virtual
//! time, with write tracking, coordinated checkpointing, failure
//! injection and rollback recovery.
//!
//! Two entry points:
//!
//! * [`characterize`] — the paper's methodology (§4): run a workload on
//!   a metadata-only [`SparseSpace`] per rank with the write tracker
//!   sampling every timeslice. This is what regenerates every table and
//!   figure, and it scales to the full 64-rank, 1 GB/process
//!   configurations because no page contents exist.
//! * [`run_fault_tolerant`] — the system the paper argues is feasible:
//!   content-backed spaces, coordinated incremental checkpoints at
//!   iteration boundaries (§6.2), failure injection, and global
//!   rollback recovery with byte-exact restoration.
//!
//! ## Execution model
//!
//! Each rank is a real thread with a virtual clock. Compute steps are
//! sliced at timeslice boundaries so the tracker's alarm sees exactly
//! the pages a real run would dirty per window; sends compute arrival
//! times analytically; receives jump the clock to
//! `max(local, arrival)` plus the bounce-buffer copy (which dirties the
//! destination pages, §4.2); collectives rendezvous on the
//! participants' clocks. The result is bit-for-bit deterministic.
//!
//! At every iteration boundary the ranks already synchronize, so the
//! runner piggybacks a vote word on that allreduce: STOP (run limit
//! reached), FAIL (injected failure), CHECKPOINT (interval elapsed).
//! The OR of the votes is the global decision — the coordinated
//! checkpoint costs no extra communication rounds, exactly the
//! opportunity §6.2 identifies.

mod engine;
pub mod report;
pub mod tenant;

pub use report::{reduce_reports, ClusterAggregate, ReportDetail, DEFAULT_REDUCE_ARITY};
pub use tenant::{fleet_profiles, mixed_fleet, TenantHandle, TenantStall, TenantStallAccount};

use std::sync::{Arc, Mutex};

use ickpt_apps::codec::{ByteReader, ByteWriter};
use ickpt_apps::step::{AppModel, Step};
use ickpt_apps::Workload;
use ickpt_core::checkpoint::{
    capture_full_with, capture_incremental_with, CaptureConfig, CaptureScratch, ContentStats,
};
use ickpt_core::coordinator::{CheckpointPlanner, CheckpointPolicy, VoteFlags};
use ickpt_core::metrics::{IwsSample, SampleSummary};
use ickpt_core::restore::{
    latest_committed_generation, record_restore, restore_rank_with, RestoreConfig,
};
use ickpt_core::trace::RankTrace;
use ickpt_core::tracked_space::{ContentWrite, TrackedSpace};
use ickpt_core::tracker::{EpochSample, IterationSample, SampleMode, TrackerConfig, WriteTracker};
use ickpt_mem::{
    pages_for_bytes, AddressSpace, BackedSpace, DataLayout, PageRange, SparseSpace, WriteProfile,
};
use ickpt_net::comm::Endpoint;
use ickpt_net::{CommWorld, NetConfig};
use ickpt_obs::{DeviceKind, Event, Lane, ObsSummary, Recorder, RecoveryTier};
use ickpt_sim::rendezvous::Combine;
use ickpt_sim::{DevicePreset, SimDuration, SimTime, WorkerGate};
use ickpt_storage::{
    shared_device, Chunk, ChunkKey, ChunkKind, DrainStats, DrainTopology, Manifest, RankEntry,
    RecoverySource, SchemeSpec, StableStorage, StorageError, ThrottledStore, TierTopology,
    TierUsage, TieredStore,
};

/// Error from a cluster run.
#[derive(Debug)]
pub enum RunError {
    /// Networking failure (usually a mismatched send/recv script).
    Net(ickpt_net::NetError),
    /// Memory model failure (layout too small, bad unmap).
    Mem(ickpt_mem::MemError),
    /// Checkpoint/restore failure.
    Core(ickpt_core::CoreError),
    /// Stable-storage failure.
    Storage(ickpt_storage::StorageError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Net(e) => write!(f, "net: {e}"),
            RunError::Mem(e) => write!(f, "mem: {e}"),
            RunError::Core(e) => write!(f, "core: {e}"),
            RunError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ickpt_net::NetError> for RunError {
    fn from(e: ickpt_net::NetError) -> Self {
        RunError::Net(e)
    }
}
impl From<ickpt_mem::MemError> for RunError {
    fn from(e: ickpt_mem::MemError) -> Self {
        RunError::Mem(e)
    }
}
impl From<ickpt_core::CoreError> for RunError {
    fn from(e: ickpt_core::CoreError) -> Self {
        RunError::Core(e)
    }
}
impl From<ickpt_storage::StorageError> for RunError {
    fn from(e: ickpt_storage::StorageError) -> Self {
        RunError::Storage(e)
    }
}

/// The clock pair of one iteration-boundary allreduce, with the exact
/// counter values at that instant — everything a derived (re-binned)
/// run report needs to reconstruct the end state of a shorter run that
/// would have stopped at this boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryRecord {
    /// Rank clock entering the boundary (the instant the STOP vote is
    /// computed against `run_for`).
    pub pre: SimTime,
    /// Rank clock after the boundary allreduce completed — the final
    /// time of a run that stops here.
    pub post: SimTime,
    /// Mapped footprint at the boundary, in pages.
    pub footprint_pages: u64,
    /// Cumulative page faults up to the boundary.
    pub total_faults: u64,
    /// Cumulative fault-handling overhead up to the boundary.
    pub overhead: SimDuration,
    /// Cumulative bytes received (messages + collectives, including
    /// this boundary's allreduce) up to the boundary.
    pub bytes_received: u64,
}

/// Per-rank results of a run.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// The rank.
    pub rank: usize,
    /// Per-timeslice IWS samples.
    pub samples: Vec<IwsSample>,
    /// Per-epoch unique-page samples (when an epoch was configured).
    pub epoch_samples: Vec<EpochSample>,
    /// Per-iteration ground-truth samples (when enabled).
    pub iteration_samples: Vec<IterationSample>,
    /// Total page faults taken.
    pub total_faults: u64,
    /// Accumulated fault-handling overhead (§6.5 intrusiveness).
    pub overhead: SimDuration,
    /// Virtual time this attempt started at (0 for a fresh run, the
    /// restored checkpoint's capture time plus restore cost after a
    /// rollback).
    pub started_at: SimTime,
    /// Final virtual time.
    pub final_time: SimTime,
    /// Iterations completed.
    pub iterations: u64,
    /// Total bytes received (messages + collectives).
    pub bytes_received: u64,
    /// Final footprint in pages.
    pub footprint_pages: u64,
    /// Content digest of the final memory image (backed runs only).
    pub content_digest: Option<u64>,
    /// Checkpoint bytes written to stable storage.
    pub checkpoint_bytes: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Total virtual time the application stalled for checkpoints.
    pub checkpoint_stall: SimDuration,
    /// Total lag between checkpoint capture and global commit
    /// (nonzero in forked mode).
    pub commit_lag: SimDuration,
    /// Dirty pages dropped by memory exclusion (§4.2) instead of being
    /// checkpointed.
    pub excluded_pages: u64,
    /// Content-layer totals across the attempt's captures: silent-same
    /// drops and sub-page delta encoding (all zero with dedup off).
    pub content: ContentStats,
    /// Exact integer roll-up of every tracker window — survives
    /// [`ReportDetail::Compact`] runs where `samples` is a decimated
    /// reservoir.
    pub summary: SampleSummary,
    /// Last globally committed generation (backed runs).
    pub last_committed: Option<u64>,
    /// Clock pairs and counter snapshots of every iteration boundary,
    /// in order — the stop-time oracle for trace re-binning.
    pub boundaries: Vec<BoundaryRecord>,
    /// The recorded write trace (ranks `< trace_ranks` of a
    /// characterization run).
    pub trace: Option<RankTrace>,
    /// Per-tier byte/time accounting (multilevel-redundancy runs).
    pub tier: Option<TierUsage>,
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Reached the configured limit.
    Completed,
    /// An injected failure aborted the attempt.
    Failed {
        /// The generation recovery should restore, if any committed.
        recover_from: Option<u64>,
    },
}

/// One recovery decision taken between attempts of a fault-tolerant
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// The (0-based) attempt that failed.
    pub attempt: u32,
    /// The failed rank.
    pub rank: usize,
    /// What kind of failure was injected.
    pub kind: FailureKind,
    /// Which tier served the failed rank's recovery.
    pub source: RecoverySource,
    /// The generation the cluster rolled back to (`None` = cold
    /// restart).
    pub generation: Option<u64>,
}

/// A whole-cluster run result.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Per-rank reports, indexed by rank.
    pub ranks: Vec<RankReport>,
    /// Number of attempts executed (1 + recoveries), for
    /// fault-tolerant runs.
    pub attempts: u32,
    /// Virtual time burned by failed attempts (work past the last
    /// committed checkpoint that had to be re-executed, plus restore
    /// costs) — the "wasted time" of the availability analysis.
    pub wasted: SimDuration,
    /// One record per failure the run recovered from.
    pub recoveries: Vec<RecoveryRecord>,
    /// Drain accounting of the durable tier (multilevel runs).
    pub drain: Option<DrainStats>,
    /// Flight-recorder aggregates, when the run carried an enabled
    /// [`Recorder`] (utilization, stalls, drain depth, recovery paths).
    pub obs: Option<ObsSummary>,
}

/// Summarize the run's flight-recorder contents (all groups the
/// recorder's sink has seen), or `None` when observability is off.
fn summarize_obs(obs: &Recorder) -> Option<ObsSummary> {
    obs.flight_recorder().map(|fr| ObsSummary::from_snapshot(&fr.snapshot()))
}

// ---------------------------------------------------------------------
// Characterization runs (the paper's methodology)
// ---------------------------------------------------------------------

/// Configuration of a characterization run.
#[derive(Debug, Clone)]
pub struct CharacterizationConfig {
    /// Number of ranks (the paper's largest configuration is 64).
    pub nranks: usize,
    /// Memory scale factor (1.0 = the paper's footprints).
    pub scale: f64,
    /// Virtual run length; the run stops at the first iteration
    /// boundary at or past this time.
    pub run_for: SimDuration,
    /// Checkpoint timeslice (§6.1); 1 s in most of the paper.
    pub timeslice: SimDuration,
    /// Virtual cost charged per page fault (0 = non-intrusive
    /// measurement).
    pub fault_cost: SimDuration,
    /// Stretch rank clocks by the fault overhead (models the paper's
    /// §6.5 intrusiveness rather than just accounting it).
    pub stretch_overhead: bool,
    /// Epoch length for unique-page accumulation (Table 3), if any.
    pub epoch: Option<SimDuration>,
    /// Record per-iteration ground truth.
    pub track_iterations: bool,
    /// Interconnect model.
    pub net: NetConfig,
    /// Workload seed.
    pub seed: u64,
    /// Record a write trace ([`RankTrace`]) on the first `trace_ranks`
    /// ranks (0 = off). The paper's workloads are bulk-synchronous and
    /// rank-symmetric, so rank 0's trace characterizes the cluster;
    /// property tests trace every rank.
    pub trace_ranks: usize,
    /// Flight recorder; disabled by default (zero-cost no-op).
    pub obs: Recorder,
    /// Worker threads stepping the rank state machines (event engine)
    /// or executing gated rank threads (threaded path). `None` defers
    /// to the `ICKPT_SIM_WORKERS` environment knob, then host
    /// parallelism. Results are byte-identical at any value.
    pub workers: Option<usize>,
    /// Per-rank report retention; [`ReportDetail::Full`] preserves the
    /// historical (pre-compaction) reports exactly.
    pub detail: ReportDetail,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        Self {
            nranks: 4,
            scale: 1.0,
            run_for: SimDuration::from_secs(300),
            timeslice: SimDuration::from_secs(1),
            fault_cost: SimDuration::ZERO,
            stretch_overhead: false,
            epoch: None,
            track_iterations: false,
            net: NetConfig::qsnet(),
            seed: 0x5EED,
            trace_ranks: 0,
            obs: Recorder::disabled(),
            workers: None,
            detail: ReportDetail::Full,
        }
    }
}

impl CharacterizationConfig {
    fn tracker_config(&self, rank: usize) -> TrackerConfig {
        let sample_mode = match self.detail {
            _ if self.detail.rank_is_full(rank, self.trace_ranks) => SampleMode::Full,
            ReportDetail::Compact { reservoir } => SampleMode::Compact { reservoir },
            ReportDetail::Full => SampleMode::Full,
        };
        TrackerConfig {
            timeslice: self.timeslice,
            fault_cost: self.fault_cost,
            track_checkpoint_set: false,
            epoch: self.epoch,
            track_iterations: self.track_iterations,
            record_trace: rank < self.trace_ranks,
            obs: self.obs.clone(),
            obs_rank: rank as u32,
            sample_mode,
        }
    }
}

/// Run a catalog workload under the paper's instrumentation: sparse
/// (metadata-only) spaces, per-timeslice IWS sampling, no actual
/// checkpoint data movement.
pub fn characterize(workload: Workload, cfg: &CharacterizationConfig) -> RunReport {
    let layout = workload.layout(cfg.scale);
    characterize_model(cfg, layout, |rank| {
        Box::new(workload.build(rank, cfg.nranks, cfg.scale, cfg.seed))
    })
}

/// [`characterize`] over an arbitrary model builder.
///
/// Dispatches to the event-driven engine ([`engine`]) by default; set
/// `ICKPT_SIM_ENGINE=threaded` to force the legacy one-thread-per-rank
/// reference path. Both produce byte-identical reports (the property
/// suite pins this), but only the engine scales to tens of thousands
/// of ranks.
pub fn characterize_model<F>(
    cfg: &CharacterizationConfig,
    layout: DataLayout,
    build: F,
) -> RunReport
where
    F: Fn(usize) -> Box<dyn AppModel> + Sync,
{
    let threaded = std::env::var("ICKPT_SIM_ENGINE").is_ok_and(|v| v.trim() == "threaded");
    if threaded {
        characterize_model_threaded(cfg, layout, build)
    } else {
        engine::characterize_event(cfg, layout, &build)
    }
}

/// The legacy one-thread-per-rank characterization path, kept as the
/// independent reference implementation the event engine is checked
/// against. A [`WorkerGate`] caps how many rank threads *execute*
/// concurrently (permits from [`CharacterizationConfig::workers`]);
/// every blocking wait inside [`Endpoint`] releases the permit, so the
/// cap cannot deadlock and virtual-time results are unchanged.
pub fn characterize_model_threaded<F>(
    cfg: &CharacterizationConfig,
    layout: DataLayout,
    build: F,
) -> RunReport
where
    F: Fn(usize) -> Box<dyn AppModel> + Sync,
{
    let world = CommWorld::new(cfg.nranks, cfg.net.clone());
    let endpoints = world.endpoints();
    cfg.obs.emit(Lane::Run, SimTime::ZERO, Event::RunStart { ranks: cfg.nranks as u32 });
    let params = RunParams {
        run_for: cfg.run_for,
        max_iterations: None,
        stretch_overhead: cfg.stretch_overhead,
        obs: cfg.obs.clone(),
    };
    let gate = Arc::new(WorkerGate::new(engine::resolve_workers(cfg.workers)));
    let reports: Vec<RankReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, mut ep)| {
                let build = &build;
                let params = &params;
                let tcfg = cfg.tracker_config(rank);
                let gate = gate.clone();
                scope.spawn(move || -> Result<RankReport, RunError> {
                    ep.set_worker_gate(gate.clone());
                    let _permit = gate.permit();
                    let mut space = SparseSpace::new(layout);
                    let tracker =
                        WriteTracker::new(layout.capacity_pages(), space.mapped_pages(), tcfg);
                    let model = build(rank);
                    let mut runner = RankRunner::new(
                        rank,
                        &mut space,
                        tracker,
                        ep,
                        model,
                        SimTime::ZERO,
                        None,
                        None,
                        params,
                    );
                    runner.run_init()?;
                    let (failed, _) = runner.run_loop()?;
                    debug_assert!(!failed);
                    Ok(runner.into_report(None))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_else(|e| panic!("characterization run failed: {e}"))
    });
    RunReport {
        outcome: RunOutcome::Completed,
        ranks: reports,
        attempts: 1,
        wasted: SimDuration::ZERO,
        recoveries: Vec::new(),
        drain: None,
        obs: summarize_obs(&cfg.obs),
    }
}

// ---------------------------------------------------------------------
// Fault-tolerant runs (the system the paper argues is feasible)
// ---------------------------------------------------------------------

/// Topology of the storage path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoragePath {
    /// Every rank writes over its own device (node-local disks or a
    /// dedicated network lane): checkpoint writes proceed in parallel.
    PerRank,
    /// All ranks contend on one array (a shared parallel filesystem):
    /// writes serialize, so the stall grows with the rank count.
    Shared,
}

/// How a checkpoint stalls the application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointMode {
    /// Classic stop-and-copy: the rank blocks until its chunk is fully
    /// on stable storage. The stall per checkpoint is what the paper's
    /// IB analysis bounds.
    StopAndCopy,
    /// Forked (copy-on-write style, as in libckpt): the rank pays only
    /// a snapshot cost proportional to its footprint, the write
    /// streams out in the background, and the generation *commits* at
    /// the first iteration boundary after every rank's write landed.
    /// A failure before commit rolls back to the previous generation.
    /// Pages the application writes while the write-out is in flight
    /// pay a copy-on-write charge (`cow_copy_ns` per faulted page,
    /// accounted at commit time).
    Forked {
        /// Snapshot cost per mapped page (page-table copy + protect),
        /// nanoseconds.
        fork_cost_per_page_ns: u64,
        /// Copy cost per page first-written during the write-out
        /// window (the COW duplication), nanoseconds.
        cow_copy_ns: u64,
    },
}

/// What an injected failure destroys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The process dies but the node survives: its node-local
    /// checkpoint tier is intact and recovery restores in place.
    Process,
    /// The whole node is lost: the rank's node-local tier is wiped and
    /// recovery must reconstruct from redundancy peers or fall back to
    /// the durable tier. Without a [`RedundancyConfig`] there is no
    /// node-local tier, so this behaves like [`FailureKind::Process`].
    NodeLoss,
}

/// An injected failure: the given rank votes FAIL at the first
/// iteration boundary at or past `at`.
#[derive(Debug, Clone, Copy)]
pub struct FailureSpec {
    /// Failing rank.
    pub rank: usize,
    /// Virtual time of the failure.
    pub at: SimTime,
    /// What the failure destroys.
    pub kind: FailureKind,
}

impl FailureSpec {
    /// A process failure (node-local storage survives).
    pub fn process(rank: usize, at: SimTime) -> Self {
        Self { rank, at, kind: FailureKind::Process }
    }

    /// A node loss (node-local storage wiped with the node).
    pub fn node_loss(rank: usize, at: SimTime) -> Self {
        Self { rank, at, kind: FailureKind::NodeLoss }
    }
}

/// Multilevel redundant storage for a fault-tolerant run: checkpoints
/// land on per-rank node-local stores, are protected across nodes by
/// `scheme`, and every `drain_every`-th generation is drained to the
/// shared array ([`FaultTolerantConfig::store`] +
/// [`FaultTolerantConfig::device`]) in the background.
#[derive(Debug, Clone, Copy)]
pub struct RedundancyConfig {
    /// Cross-node protection of the node-local tier.
    pub scheme: SchemeSpec,
    /// Device model of the node-local tier.
    pub local_device: DevicePreset,
    /// Drain every k-th committed generation to the shared array.
    pub drain_every: u64,
    /// How drain traffic is charged on the shared array:
    /// [`DrainTopology::Flat`] (one transfer per rank, the historical
    /// behaviour) or [`DrainTopology::Tree`] (one batched transfer per
    /// aggregator group — SCR-style I/O forwarding, which matters once
    /// per-transfer array latency is multiplied by 16k ranks).
    pub drain_topology: DrainTopology,
}

impl RedundancyConfig {
    /// SCR-style defaults: partner replication on the neighbour node
    /// over a RAM-disk-class local tier, draining every 4th generation.
    pub fn partner() -> Self {
        Self {
            scheme: SchemeSpec::Partner { offset: 1 },
            local_device: DevicePreset::NodeLocal,
            drain_every: 4,
            drain_topology: DrainTopology::Flat,
        }
    }
}

/// Configuration of a fault-tolerant run.
pub struct FaultTolerantConfig {
    /// Number of ranks.
    pub nranks: usize,
    /// Stop after this many iterations.
    pub max_iterations: u64,
    /// Checkpoint timeslice for the tracker.
    pub timeslice: SimDuration,
    /// Checkpoint policy (interval + full/incremental lineage).
    pub policy: CheckpointPolicy,
    /// Stable storage shared by all ranks.
    pub store: Arc<dyn StableStorage>,
    /// Per-rank storage path device (disk or network, §3).
    pub device: DevicePreset,
    /// Stall behaviour of checkpoints.
    pub mode: CheckpointMode,
    /// Whether the storage device is per-rank or shared.
    pub storage_path: StoragePath,
    /// Injected failures: attempt `i` (0-based) triggers
    /// `failures[i]`; attempts beyond the list run failure-free.
    pub failures: Vec<FailureSpec>,
    /// Interconnect model.
    pub net: NetConfig,
    /// Safety valve on recovery attempts.
    pub max_attempts: u32,
    /// Multilevel redundant storage; `None` = single-tier writes
    /// straight to [`FaultTolerantConfig::store`] (the pre-existing
    /// behaviour).
    pub redundancy: Option<RedundancyConfig>,
    /// Flight recorder; [`Recorder::disabled`] makes every emit a
    /// no-op branch on a `None`.
    pub obs: Recorder,
    /// Content dedup + delta encoding override: `None` defers to the
    /// `ICKPT_DEDUP` environment knob, `Some(b)` forces it per run so
    /// experiments can compare effective vs dirty IB side by side.
    pub dedup: Option<bool>,
    /// How versioned touches materialize bytes on the backed spaces
    /// ([`WriteProfile::Uniform`] keeps the historical whole-page
    /// rewrite; [`WriteProfile::Scientific`] mixes in silent stores
    /// and sub-page updates for content-layer studies).
    pub write_profile: WriteProfile,
}

/// Run a model fleet with coordinated checkpointing and recovery on
/// content-backed spaces. `build(rank)` constructs the model; `layout`
/// must fit it.
pub fn run_fault_tolerant<F>(
    cfg: &FaultTolerantConfig,
    layout: DataLayout,
    build: F,
) -> Result<RunReport, RunError>
where
    F: Fn(usize) -> Box<dyn AppModel> + Sync,
{
    assert!(cfg.max_attempts >= 1);
    // The tier topology outlives attempts: node-local data survives a
    // process restart (that survival is the whole point of the tier),
    // and NodeLoss wipes exactly one rank's local store below.
    let topo = cfg.redundancy.as_ref().map(|r| {
        TierTopology::new(
            cfg.nranks,
            r.scheme,
            r.local_device.build(),
            cfg.net.build_nic(),
            cfg.device.build(),
            cfg.store.clone(),
            r.drain_every,
        )
    });
    if let Some(t) = &topo {
        t.attach_obs(cfg.obs.clone());
        if let Some(r) = &cfg.redundancy {
            t.set_drain_topology(r.drain_topology);
        }
    }
    cfg.obs.emit(Lane::Run, SimTime::ZERO, Event::RunStart { ranks: cfg.nranks as u32 });
    let mut attempt = 0u32;
    let mut resume_from: Option<u64> = None;
    let mut wasted = SimDuration::ZERO;
    let mut recoveries = Vec::new();
    // Capture buffers survive attempts: a rollback re-leases the failed
    // attempt's allocations instead of re-growing them.
    let arena = Arc::new(RankArena::new());
    loop {
        let report = ft_attempt(cfg, layout, &build, resume_from, attempt, topo.as_ref(), &arena)?;
        attempt += 1;
        match report.outcome {
            RunOutcome::Completed => {
                let drain = topo.as_ref().map(|t| t.drain_stats());
                let obs = summarize_obs(&cfg.obs);
                return Ok(RunReport {
                    attempts: attempt,
                    wasted,
                    recoveries,
                    drain,
                    obs,
                    ..report
                });
            }
            RunOutcome::Failed { recover_from } => {
                let r0 = &report.ranks[0];
                let fail_time = r0.final_time;
                let failure = cfg.failures.get(attempt as usize - 1).copied();
                if let Some(f) = failure {
                    cfg.obs.emit(
                        Lane::Run,
                        fail_time,
                        Event::Failure {
                            rank: f.rank as u32,
                            node_loss: (f.kind == FailureKind::NodeLoss) as u32,
                        },
                    );
                }
                // Tiered recovery: wipe the lost node's local tier,
                // plan where the failed rank's data comes from, and
                // roll in-flight drains back out of the shared array.
                let resume = match (&topo, failure) {
                    (Some(topo), Some(f)) => {
                        let wiped = f.kind == FailureKind::NodeLoss;
                        if wiped {
                            topo.wipe_local(f.rank)?;
                        }
                        let plan = topo.plan_recovery(f.rank, wiped, recover_from, fail_time);
                        topo.rollback_drain(plan.generation, fail_time)?;
                        cfg.obs.emit(
                            Lane::Run,
                            fail_time,
                            Event::RecoveryPlan {
                                rank: f.rank as u32,
                                tier: plan.source.obs_tier(),
                                generation: plan.generation.unwrap_or(0),
                            },
                        );
                        recoveries.push(RecoveryRecord {
                            attempt: attempt - 1,
                            rank: f.rank,
                            kind: f.kind,
                            source: plan.source,
                            generation: plan.generation,
                        });
                        plan.generation
                    }
                    _ => {
                        if let Some(f) = failure {
                            // Single-tier: every restore is served by
                            // the (durable) shared store.
                            let tier = if recover_from.is_some() {
                                RecoveryTier::Durable
                            } else {
                                RecoveryTier::ColdRestart
                            };
                            cfg.obs.emit(
                                Lane::Run,
                                fail_time,
                                Event::RecoveryPlan {
                                    rank: f.rank as u32,
                                    tier,
                                    generation: recover_from.unwrap_or(0),
                                },
                            );
                            recoveries.push(RecoveryRecord {
                                attempt: attempt - 1,
                                rank: f.rank,
                                kind: f.kind,
                                source: RecoverySource::Durable,
                                generation: recover_from,
                            });
                        }
                        recover_from
                    }
                };
                // The rollback throws away everything computed after
                // the restored checkpoint's capture instant (the next
                // attempt also pays the restore read on top, which
                // lands inside this same window once it resumes).
                let preserved_until = match resume {
                    Some(gen) => {
                        let chunk_data = match &topo {
                            Some(t) => t.fetch_chunk_untimed(ChunkKey::new(0, gen))?,
                            None => cfg.store.get_chunk(ChunkKey::new(0, gen))?,
                        };
                        SimTime(Chunk::decode(&chunk_data)?.capture_time_ns)
                    }
                    None => SimTime::ZERO,
                };
                wasted += r0.final_time.saturating_sub(preserved_until);
                if attempt >= cfg.max_attempts {
                    let drain = topo.as_ref().map(|t| t.drain_stats());
                    let obs = summarize_obs(&cfg.obs);
                    return Ok(RunReport {
                        attempts: attempt,
                        wasted,
                        recoveries,
                        drain,
                        obs,
                        ..report
                    });
                }
                // No usable generation anywhere → restart from scratch
                // (the classic cold restart); otherwise roll back.
                resume_from = resume;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn ft_attempt<F>(
    cfg: &FaultTolerantConfig,
    layout: DataLayout,
    build: &F,
    resume_from: Option<u64>,
    attempt: u32,
    topo: Option<&Arc<TierTopology>>,
    arena: &Arc<RankArena>,
) -> Result<RunReport, RunError>
where
    F: Fn(usize) -> Box<dyn AppModel> + Sync,
{
    let world = CommWorld::new(cfg.nranks, cfg.net.clone());
    let endpoints = world.endpoints();
    // Cap host-thread fan-out exactly as the characterization paths do;
    // blocking waits release the permit, so the cap cannot deadlock.
    let gate = Arc::new(WorkerGate::new(engine::resolve_workers(None)));
    let params = RunParams {
        run_for: SimDuration(u64::MAX / 4),
        max_iterations: Some(cfg.max_iterations),
        stretch_overhead: false,
        obs: cfg.obs.clone(),
    };
    let failure = cfg.failures.get(attempt as usize).copied();
    // One shared array for every rank, or None for per-rank paths.
    // Tiered runs charge the array through the drain instead.
    let array = (topo.is_none() && matches!(cfg.storage_path, StoragePath::Shared))
        .then(|| shared_device(cfg.device.build()));
    let results: Vec<Result<(RankReport, bool), RunError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, mut ep)| {
                let params = &params;
                let store = cfg.store.clone();
                let policy = cfg.policy;
                let device = cfg.device;
                let timeslice = cfg.timeslice;
                let mode = cfg.mode;
                let array = array.clone();
                let topo = topo.cloned();
                let obs = cfg.obs.clone();
                let gate = gate.clone();
                let arena = arena.clone();
                scope.spawn(move || -> Result<(RankReport, bool), RunError> {
                    ep.set_worker_gate(gate.clone());
                    let _permit = gate.permit();
                    let tcfg = TrackerConfig {
                        timeslice,
                        fault_cost: SimDuration::ZERO,
                        track_checkpoint_set: true,
                        epoch: None,
                        track_iterations: false,
                        record_trace: false,
                        obs: obs.clone(),
                        obs_rank: rank as u32,
                        sample_mode: SampleMode::Full,
                    };
                    let mut space = BackedSpace::new(layout);
                    space.set_write_profile(cfg.write_profile);
                    let mut model = build(rank);
                    let mut clock = SimTime::ZERO;
                    let mut planner = CheckpointPlanner::new(policy, SimTime::ZERO);
                    let tstore = match &topo {
                        Some(t) => CkptStore::Tiered(t.handle(rank)),
                        None => CkptStore::Flat(match array {
                            // Shared-array contention resolves in host
                            // thread arrival order, so queue waits are
                            // not virtual-time deterministic; that leg
                            // stays uninstrumented to keep trace
                            // exports byte-stable across thread counts.
                            Some(dev) => ThrottledStore::with_shared_device(store.clone(), dev),
                            None => ThrottledStore::new(store.clone(), device.build()).observed(
                                obs.clone(),
                                Lane::Rank(rank as u32),
                                Lane::Device(DeviceKind::Storage, rank as u32),
                            ),
                        }),
                    };
                    let mut skip_init = false;
                    if let Some(gen) = resume_from {
                        // Rollback recovery: restore memory, model
                        // state and clock from the committed
                        // generation. The manifest read and the chain
                        // reads go through the same bandwidth-modelled
                        // path as checkpoint writes (tiered recovery:
                        // local, then peer reconstruction, then the
                        // shared array), so restart cost uses the
                        // paper's device model.
                        let (restore_report, read_cost) = match &tstore {
                            CkptStore::Tiered(_) => {
                                let t = topo.as_ref().expect("tiered store implies topology");
                                let reader = t.reader(rank, SimTime::ZERO);
                                validate_manifest(&reader.get_manifest(gen)?, gen, cfg.nranks)?;
                                let report = restore_rank_with(
                                    &reader,
                                    rank as u32,
                                    gen,
                                    &mut space,
                                    &RestoreConfig::from_env(),
                                )?;
                                let cost = reader.now().saturating_sub(SimTime::ZERO);
                                t.note_recovery_time(rank, cost);
                                (report, cost)
                            }
                            CkptStore::Flat(ts) => {
                                let (mdata, t0) = ts.get_manifest_timed(SimTime::ZERO, gen)?;
                                validate_manifest(&mdata, gen, cfg.nranks)?;
                                let reader = ts.timed_reads(t0);
                                let report = restore_rank_with(
                                    &reader,
                                    rank as u32,
                                    gen,
                                    &mut space,
                                    &RestoreConfig::from_env(),
                                )?;
                                (report, reader.now().saturating_sub(SimTime::ZERO))
                            }
                        };
                        record_restore(
                            &obs,
                            rank as u32,
                            SimTime::ZERO,
                            SimTime::ZERO + read_cost,
                            &restore_report,
                        );
                        let mut blob = ByteReader::new(&restore_report.app_state);
                        let model_state = blob
                            .get_bytes()
                            .map_err(|_| {
                                ickpt_storage::StorageError::Corrupt("bad app state".into())
                            })?
                            .to_vec();
                        let digest = blob.get_u64().map_err(|_| {
                            ickpt_storage::StorageError::Corrupt("missing digest".into())
                        })?;
                        // Restore self-check: the rebuilt image must
                        // hash to what was captured.
                        if space.content_digest() != digest {
                            return Err(ickpt_storage::StorageError::Corrupt(format!(
                                "rank {rank}: restored image digest mismatch at generation {gen}"
                            ))
                            .into());
                        }
                        model.restore_state(&model_state).map_err(|_| {
                            ickpt_storage::StorageError::Corrupt("bad app state".into())
                        })?;
                        clock = SimTime(restore_report.capture_time_ns) + read_cost;
                        planner.resume_after(gen, clock);
                        skip_init = true;
                    }
                    let mut tracker =
                        WriteTracker::new(layout.capacity_pages(), space.mapped_pages(), tcfg);
                    // Alarms continue on the absolute virtual clock.
                    tracker.advance_to(clock);
                    let ckpt = RankCheckpointer {
                        rank,
                        nranks: cfg.nranks,
                        planner,
                        tstore,
                        mode,
                        pending: None,
                        bytes_written: 0,
                        count: 0,
                        stall: SimDuration::ZERO,
                        commit_lag: SimDuration::ZERO,
                        capture_cfg: {
                            let mut c = CaptureConfig::from_env();
                            if let Some(dedup) = cfg.dedup {
                                c.dedup = dedup;
                            }
                            c.obs = obs.clone();
                            c.obs_rank = rank as u32;
                            c
                        },
                        scratch: arena.acquire(),
                        arena: Some(arena),
                        content: ContentStats::default(),
                        obs,
                    };
                    let mut runner = RankRunner::new(
                        rank,
                        &mut space,
                        tracker,
                        ep,
                        model,
                        clock,
                        failure.and_then(|f| (f.rank == rank).then_some(f.at)),
                        Some(ckpt),
                        params,
                    );
                    if !skip_init {
                        runner.run_init()?;
                    }
                    let (failed, last_committed) = runner.run_loop()?;
                    let digest = runner.space.content_digest();
                    let mut report = runner.into_report(Some(digest));
                    report.last_committed = last_committed;
                    Ok((report, failed))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    });
    let mut ranks = Vec::with_capacity(cfg.nranks);
    let mut failed = false;
    for r in results {
        let (report, rank_failed) = r?;
        failed |= rank_failed;
        ranks.push(report);
    }
    if let Some(t) = topo {
        for (rank, report) in ranks.iter_mut().enumerate() {
            report.tier = Some(t.usage(rank));
        }
    }
    // All ranks agree on the outcome via the vote; use rank 0.
    let outcome = if failed {
        RunOutcome::Failed { recover_from: ranks[0].last_committed }
    } else {
        RunOutcome::Completed
    };
    Ok(RunReport {
        outcome,
        ranks,
        attempts: 1,
        wasted: SimDuration::ZERO,
        recoveries: Vec::new(),
        drain: None,
        obs: None,
    })
}

/// Decode a commit manifest and check it covers every rank at the
/// expected generation before a restore trusts it.
fn validate_manifest(data: &[u8], generation: u64, nranks: usize) -> Result<(), RunError> {
    let manifest = Manifest::decode(data)?;
    if manifest.generation != generation || manifest.nranks as usize != nranks {
        return Err(StorageError::Corrupt(format!(
            "manifest mismatch: found generation {} over {} ranks, expected {generation} over {nranks}",
            manifest.generation, manifest.nranks
        ))
        .into());
    }
    if !manifest.is_complete() {
        return Err(StorageError::Corrupt(format!(
            "manifest of generation {generation} does not cover every rank"
        ))
        .into());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The per-rank execution engine
// ---------------------------------------------------------------------

/// A rank's write path to stable storage: either the single-tier
/// throttled store or a handle into the multilevel [`TierTopology`].
enum CkptStore {
    Flat(ThrottledStore),
    Tiered(TieredStore),
}

impl CkptStore {
    fn put_chunk_timed(
        &self,
        now: SimTime,
        key: ChunkKey,
        data: &[u8],
    ) -> Result<SimTime, StorageError> {
        match self {
            CkptStore::Flat(s) => s.put_chunk_timed(now, key, data),
            CkptStore::Tiered(s) => s.put_chunk_timed(now, key, data),
        }
    }

    fn put_manifest_timed(
        &self,
        now: SimTime,
        generation: u64,
        data: &[u8],
    ) -> Result<SimTime, StorageError> {
        match self {
            CkptStore::Flat(s) => s.put_manifest_timed(now, generation, data),
            CkptStore::Tiered(s) => s.put_manifest_timed(now, generation, data),
        }
    }

    /// Commit notification at the barrier-released instant: feeds the
    /// background drain on tiered runs, a no-op on flat ones (their
    /// writes already went to the durable store).
    fn note_committed(&self, generation: u64, commit_time: SimTime) -> Result<(), StorageError> {
        match self {
            CkptStore::Flat(_) => Ok(()),
            CkptStore::Tiered(s) => s.note_committed(generation, commit_time),
        }
    }
}

struct RunParams {
    run_for: SimDuration,
    max_iterations: Option<u64>,
    stretch_overhead: bool,
    obs: Recorder,
}

/// Pool of per-rank capture scratch buffers shared across the attempts
/// of a fault-tolerant run: rank threads of attempt N+1 reuse the
/// capture/encode allocations of attempt N instead of re-growing them
/// from zero. Leases reset the dedup baseline, preserving the
/// "fresh index after rollback" invariant a per-attempt
/// `CaptureScratch::new()` provided — a recycled scratch is
/// behaviourally indistinguishable from a fresh one.
pub struct RankArena {
    pool: Mutex<Vec<CaptureScratch>>,
}

impl RankArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self { pool: Mutex::new(Vec::new()) }
    }

    /// Lease a scratch (recycled when available, fresh otherwise).
    pub fn acquire(&self) -> CaptureScratch {
        let mut scratch = self.pool.lock().expect("arena poisoned").pop().unwrap_or_default();
        scratch.dedup_index().reset();
        scratch
    }

    /// Return a scratch to the pool for the next lease.
    pub fn release(&self, scratch: CaptureScratch) {
        self.pool.lock().expect("arena poisoned").push(scratch);
    }

    #[cfg(test)]
    fn pooled(&self) -> usize {
        self.pool.lock().expect("arena poisoned").len()
    }
}

impl Default for RankArena {
    fn default() -> Self {
        Self::new()
    }
}

/// A checkpoint written but not yet globally committed (forked mode).
struct PendingCommit {
    generation: u64,
    kind: ChunkKind,
    parent: Option<u64>,
    write_done: SimTime,
    payload: u64,
    /// Tracker fault count at capture: faults taken since then are
    /// (an upper bound on) the pages needing COW duplication.
    faults_at_capture: u64,
}

/// Per-rank checkpoint machinery (backed runs only).
struct RankCheckpointer {
    rank: usize,
    nranks: usize,
    planner: CheckpointPlanner,
    tstore: CkptStore,
    mode: CheckpointMode,
    pending: Option<PendingCommit>,
    bytes_written: u64,
    count: u64,
    /// Total virtual time the application was stalled by checkpoints.
    stall: SimDuration,
    /// Total lag between capture and global commit.
    commit_lag: SimDuration,
    /// Capture tuning (worker count from `ICKPT_CAPTURE_WORKERS`).
    capture_cfg: CaptureConfig,
    /// Recycled capture/encode buffers: steady-state checkpoints are
    /// allocation-free. Also owns the dedup baseline; leases from the
    /// [`RankArena`] reset the index, so a rollback can never reuse a
    /// stale baseline (the index starts fully invalid after every
    /// recovery).
    scratch: CaptureScratch,
    /// Arena the scratch returns to when this checkpointer drops.
    arena: Option<Arc<RankArena>>,
    /// Run totals of the content layer (silent-same drops, deltas).
    content: ContentStats,
    /// Flight recorder (stall spans + commit instants on this rank's
    /// lane).
    obs: Recorder,
}

impl Drop for RankCheckpointer {
    fn drop(&mut self) {
        if let Some(arena) = &self.arena {
            arena.release(std::mem::take(&mut self.scratch));
        }
    }
}

impl RankCheckpointer {
    fn take(
        &mut self,
        space: &BackedSpace,
        tracker: &mut WriteTracker,
        ep: &mut Endpoint,
        model: &dyn AppModel,
        now: SimTime,
    ) -> Result<SimTime, RunError> {
        debug_assert!(self.pending.is_none(), "pending commit must settle before a new capture");
        let planned = self.planner.plan(now);
        // Pages unmapped since the last capture invalidate the dedup
        // baseline: their records may leave the chain, and a remapped
        // page must never silently match hashes from a previous
        // mapping epoch. (A full capture resets the whole index, but
        // the churn set still has to be drained.)
        if self.capture_cfg.dedup {
            for range in tracker.take_churn_set() {
                self.scratch.dedup_index().invalidate(range);
            }
        }
        let mut chunk = match planned.kind {
            ChunkKind::Full => {
                // A fresh base supersedes the pending dirty set.
                let _ = tracker.take_checkpoint_set();
                capture_full_with(
                    space,
                    self.rank as u32,
                    planned.generation,
                    now,
                    &self.capture_cfg,
                    &mut self.scratch,
                )
            }
            ChunkKind::Incremental => {
                let dirty = tracker.take_checkpoint_set();
                capture_incremental_with(
                    space,
                    self.rank as u32,
                    planned.generation,
                    planned.parent.expect("incremental has parent"),
                    now,
                    &dirty,
                    &self.capture_cfg,
                    &mut self.scratch,
                )
            }
        };
        self.content.merge(self.scratch.last_content());
        // The app-state blob carries the model state plus a digest of
        // the captured image, so restores are self-verifying.
        let mut blob = ByteWriter::new();
        blob.put_bytes(&model.save_state());
        blob.put_u64(space.content_digest());
        chunk.app_state = blob.into_vec();
        let payload = chunk.payload_bytes();
        let encoded = self.scratch.encode_reusing(&chunk);
        let encoded_len = encoded.len() as u64;
        // Every rank streams its chunk to stable storage over its own
        // (bandwidth-limited) path.
        let write_done = self.tstore.put_chunk_timed(
            now,
            ChunkKey::new(self.rank as u32, planned.generation),
            encoded,
        )?;
        // Return the chunk's buffers to the pool for the next capture.
        self.scratch.recycle(chunk);
        self.bytes_written += encoded_len;
        self.count += 1;
        match self.mode {
            CheckpointMode::StopAndCopy => {
                // The rank blocks for the write, then the generation
                // commits immediately (two-phase: gather + manifest +
                // release barrier).
                let released = self.commit(
                    ep,
                    PendingCommit {
                        generation: planned.generation,
                        kind: planned.kind,
                        parent: planned.parent,
                        write_done,
                        payload,
                        faults_at_capture: tracker.total_faults(),
                    },
                    write_done,
                )?;
                self.stall += released.saturating_sub(now);
                self.obs.emit_span(
                    Lane::Rank(self.rank as u32),
                    now,
                    released.saturating_sub(now),
                    Event::CheckpointStall { generation: planned.generation },
                );
                Ok(released)
            }
            CheckpointMode::Forked { fork_cost_per_page_ns, .. } => {
                // The rank pays only the snapshot cost; the write
                // streams out in the background and commits later.
                let fork_cost = SimDuration(space.mapped_pages() * fork_cost_per_page_ns);
                self.pending = Some(PendingCommit {
                    generation: planned.generation,
                    kind: planned.kind,
                    parent: planned.parent,
                    write_done,
                    payload,
                    faults_at_capture: tracker.total_faults(),
                });
                self.stall += fork_cost;
                self.obs.emit_span(
                    Lane::Rank(self.rank as u32),
                    now,
                    fork_cost,
                    Event::CheckpointStall { generation: planned.generation },
                );
                Ok(now + fork_cost)
            }
        }
    }

    /// Two-phase commit of `pending` entered at local time `now`:
    /// gather payload sizes, rank 0 writes the manifest, a barrier
    /// releases everyone at the commit instant.
    fn commit(
        &mut self,
        ep: &mut Endpoint,
        pending: PendingCommit,
        now: SimTime,
    ) -> Result<SimTime, RunError> {
        let (payloads, gathered_at) = ep.gather_u64(now, pending.payload);
        let commit_t = if self.rank == 0 {
            let manifest = Manifest {
                generation: pending.generation,
                commit_time_ns: gathered_at.0,
                nranks: self.nranks as u32,
                entries: payloads
                    .iter()
                    .enumerate()
                    .map(|(r, &p)| RankEntry {
                        rank: r as u32,
                        kind: pending.kind,
                        parent: pending.parent,
                        payload_bytes: p,
                    })
                    .collect(),
            };
            self.tstore.put_manifest_timed(gathered_at, pending.generation, &manifest.encode())?
        } else {
            gathered_at
        };
        let released = ep.barrier(commit_t);
        // Every rank notifies at the same barrier-released instant; on
        // tiered runs the last notifier kicks off the background drain.
        self.obs.emit(
            Lane::Rank(self.rank as u32),
            released,
            Event::CommitBarrier { generation: pending.generation },
        );
        self.tstore.note_committed(pending.generation, released)?;
        self.planner.committed(pending.generation);
        self.commit_lag += released.saturating_sub(SimTime(pending.write_done.0.min(released.0)));
        Ok(released)
    }

    /// Try to commit a pending forked checkpoint at an iteration
    /// boundary. `force` blocks until the slowest write lands;
    /// otherwise the commit only happens if every rank's write is
    /// already done. Returns the caller's new local time.
    fn settle_pending(
        &mut self,
        ep: &mut Endpoint,
        tracker: &WriteTracker,
        now: SimTime,
        force: bool,
    ) -> Result<SimTime, RunError> {
        let Some(pending) = self.pending.take() else {
            return Ok(now);
        };
        // Agree on the slowest write completion.
        let info = ep.allreduce(now, 8, pending.write_done.0, Combine::Max);
        let all_done = SimTime(info.value);
        let mut t = info.new_time;
        if all_done <= t || force {
            let stall_begin = t;
            if all_done > t {
                // Forced: wait out the background write.
                self.stall += all_done - t;
                t = all_done;
            }
            // COW charge: every page first-written during the write-out
            // window had to be duplicated before the application's
            // store could proceed.
            if let CheckpointMode::Forked { cow_copy_ns, .. } = self.mode {
                let cow_pages = tracker.total_faults().saturating_sub(pending.faults_at_capture);
                let cow = SimDuration(cow_pages * cow_copy_ns);
                self.stall += cow;
                t += cow;
            }
            if t > stall_begin {
                self.obs.emit_span(
                    Lane::Rank(self.rank as u32),
                    stall_begin,
                    t - stall_begin,
                    Event::CheckpointStall { generation: pending.generation },
                );
            }
            t = self.commit(ep, pending, t)?;
        } else {
            self.pending = Some(pending);
        }
        Ok(t)
    }
}

struct RankRunner<'a, S: AddressSpace + ContentWrite> {
    rank: usize,
    space: &'a mut S,
    tracker: WriteTracker,
    ep: Endpoint,
    model: Box<dyn AppModel>,
    started_at: SimTime,
    clock: SimTime,
    fail_at: Option<SimTime>,
    ckpt: Option<RankCheckpointer>,
    params: &'a RunParams,
    // Set when the global FAIL vote passed.
    failed: bool,
    boundaries: Vec<BoundaryRecord>,
}

impl<'a, S: AddressSpace + ContentWrite + CheckpointCapable> RankRunner<'a, S> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        rank: usize,
        space: &'a mut S,
        tracker: WriteTracker,
        ep: Endpoint,
        model: Box<dyn AppModel>,
        clock: SimTime,
        fail_at: Option<SimTime>,
        ckpt: Option<RankCheckpointer>,
        params: &'a RunParams,
    ) -> Self {
        Self {
            rank,
            space,
            tracker,
            ep,
            model,
            started_at: clock,
            clock,
            fail_at,
            ckpt,
            params,
            failed: false,
            boundaries: Vec::new(),
        }
    }

    fn run_init(&mut self) -> Result<(), RunError> {
        let phase = {
            let mut ts = TrackedSpace::new(self.space, &mut self.tracker);
            self.model.init(&mut ts)?
        };
        self.execute_steps(&phase.steps)?;
        Ok(())
    }

    /// Main loop; returns (failed, last committed generation).
    fn run_loop(&mut self) -> Result<(bool, Option<u64>), RunError> {
        loop {
            let phase = {
                let mut ts = TrackedSpace::new(self.space, &mut self.tracker);
                self.model.next_phase(&mut ts)?
            };
            self.execute_steps(&phase.steps)?;
            if phase.ends_iteration && self.iteration_boundary()? {
                break;
            }
        }
        self.tracker.finish(self.clock);
        let last = self.ckpt.as_ref().and_then(|c| c.planner.last_committed());
        Ok((self.failed, last))
    }

    /// Iteration-boundary coordination; returns true when the run ends.
    fn iteration_boundary(&mut self) -> Result<bool, RunError> {
        let pre = self.clock;
        self.tracker.mark_iteration(self.clock);
        let iterations = self.model.iterations_done();
        let mut votes = VoteFlags::none();
        let past_time = self.clock.saturating_sub(SimTime::ZERO) >= self.params.run_for;
        let past_iters = self.params.max_iterations.is_some_and(|m| iterations >= m);
        if past_time || past_iters {
            votes = votes.with(VoteFlags::STOP);
        }
        if self.fail_at.is_some_and(|t| self.clock >= t) {
            votes = votes.with(VoteFlags::FAIL);
        }
        if self.ckpt.as_ref().is_some_and(|c| c.planner.due(self.clock)) {
            votes = votes.with(VoteFlags::CHECKPOINT);
        }
        let info = self.ep.allreduce(self.clock, 16, votes.0, Combine::Or);
        self.clock = info.new_time;
        self.tracker.advance_to(self.clock);
        self.tracker.note_received(info.bytes_received);
        // Snapshot the boundary: a shorter run stopping here ends with
        // exactly these clocks and counters (checkpoint settling below
        // only happens when the run continues or a checkpoint is due).
        self.tracker.snapshot_residue(self.clock);
        self.boundaries.push(BoundaryRecord {
            pre,
            post: self.clock,
            footprint_pages: self.tracker.footprint_pages(),
            total_faults: self.tracker.total_faults(),
            overhead: self.tracker.overhead(),
            bytes_received: self.ep.bytes_received(),
        });
        self.params.obs.emit(
            Lane::Rank(self.rank as u32),
            self.clock,
            Event::IterationBoundary { iteration: iterations },
        );
        let global = VoteFlags(info.value);
        if global.has(VoteFlags::FAIL) {
            self.failed = true;
            return Ok(true);
        }
        let stop = global.has(VoteFlags::STOP);
        let take_ckpt = global.has(VoteFlags::CHECKPOINT);
        if let Some(mut ckpt) = self.ckpt.take() {
            if ckpt.pending.is_some() {
                // Forked mode: a background write may be ready to
                // commit. Force the commit when a new capture or the
                // end of the run is imminent.
                self.clock = ckpt.settle_pending(
                    &mut self.ep,
                    &self.tracker,
                    self.clock,
                    take_ckpt || stop,
                )?;
                self.tracker.advance_to(self.clock);
            }
            if take_ckpt {
                // The capture needs &BackedSpace; reachable only
                // through the concrete type, so this is specialized
                // below.
                self.clock = self.do_checkpoint(&mut ckpt)?;
                if stop {
                    // Nothing after this boundary will drive the
                    // deferred commit: flush it now.
                    self.clock =
                        ckpt.settle_pending(&mut self.ep, &self.tracker, self.clock, true)?;
                }
                self.tracker.advance_to(self.clock);
            }
            self.ckpt = Some(ckpt);
        }
        Ok(stop)
    }

    fn execute_steps(&mut self, steps: &[Step]) -> Result<(), RunError> {
        let version = self.model.iterations_done() + 1;
        for step in steps {
            match step {
                Step::Compute { duration, pattern } => {
                    let start = self.clock;
                    let end = start + *duration;
                    let dur_s = duration.as_secs_f64();
                    let mut cursor = start;
                    let mut faults = 0u64;
                    if duration.is_zero() {
                        self.tracker.advance_to(start);
                        let mut ts = TrackedSpace::new(self.space, &mut self.tracker);
                        for r in pattern.slice(0.0, 1.0) {
                            faults += ts.touch(r, version);
                        }
                    } else {
                        while cursor < end {
                            self.tracker.advance_to(cursor);
                            let seg_end = end.min(self.tracker.next_alarm_time());
                            let f0 = (cursor - start).as_secs_f64() / dur_s;
                            let f1 = (seg_end - start).as_secs_f64() / dur_s;
                            let mut ts = TrackedSpace::new(self.space, &mut self.tracker);
                            for r in pattern.slice(f0.min(1.0), f1.min(1.0)) {
                                faults += ts.touch(r, version);
                            }
                            cursor = seg_end;
                        }
                    }
                    self.clock = end;
                    if self.params.stretch_overhead {
                        // §6.5: fault handling slows the application
                        // down; stretch the clock by the handler cost.
                        self.clock += self.tracker.fault_cost(faults);
                    }
                }
                Step::Send { to, tag, bytes } => {
                    self.clock = self.ep.send(self.clock, *to, *tag, *bytes)?;
                }
                Step::Recv { from, tag, into } => {
                    let info = self.ep.recv(self.clock, *from, *tag)?;
                    self.clock = info.new_time;
                    self.tracker.advance_to(self.clock);
                    self.tracker.note_received(info.bytes);
                    if let Some(dst) = into {
                        // The bounce-buffer copy dirties the
                        // destination pages (§4.2).
                        let pages = pages_for_bytes(info.bytes).min(dst.len).max(1);
                        let r = PageRange::new(dst.start, pages);
                        let mut ts = TrackedSpace::new(self.space, &mut self.tracker);
                        ts.touch(r, version);
                    }
                }
                Step::Barrier => {
                    self.clock = self.ep.barrier(self.clock);
                    self.tracker.advance_to(self.clock);
                }
                Step::Allreduce { bytes } => {
                    let info = self.ep.allreduce(self.clock, *bytes, 0, Combine::Max);
                    self.clock = info.new_time;
                    self.tracker.advance_to(self.clock);
                    self.tracker.note_received(info.bytes_received);
                }
                Step::AllToAll { bytes_per_pair, into } => {
                    let info = self.ep.alltoall(self.clock, *bytes_per_pair);
                    self.clock = info.new_time;
                    self.tracker.advance_to(self.clock);
                    self.tracker.note_received(info.bytes_received);
                    if let Some(dst) = into {
                        let pages = pages_for_bytes(info.bytes_received).min(dst.len).max(1);
                        let r = PageRange::new(dst.start, pages);
                        let mut ts = TrackedSpace::new(self.space, &mut self.tracker);
                        ts.touch(r, version);
                    }
                }
            }
        }
        Ok(())
    }

    fn into_report(mut self, content_digest: Option<u64>) -> RankReport {
        let trace = self.tracker.records_trace().then(|| self.tracker.take_trace());
        RankReport {
            rank: self.rank,
            samples: self.tracker.samples().to_vec(),
            epoch_samples: self.tracker.epoch_samples().to_vec(),
            iteration_samples: self.tracker.iteration_samples().to_vec(),
            total_faults: self.tracker.total_faults(),
            overhead: self.tracker.overhead(),
            started_at: self.started_at,
            final_time: self.clock,
            iterations: self.model.iterations_done(),
            bytes_received: self.ep.bytes_received(),
            footprint_pages: self.tracker.footprint_pages(),
            content_digest,
            checkpoint_bytes: self.ckpt.as_ref().map_or(0, |c| c.bytes_written),
            checkpoints: self.ckpt.as_ref().map_or(0, |c| c.count),
            checkpoint_stall: self.ckpt.as_ref().map_or(SimDuration::ZERO, |c| c.stall),
            commit_lag: self.ckpt.as_ref().map_or(SimDuration::ZERO, |c| c.commit_lag),
            excluded_pages: self.tracker.excluded_pages(),
            content: self.ckpt.as_ref().map_or_else(ContentStats::default, |c| c.content),
            summary: *self.tracker.sample_summary(),
            last_committed: self.ckpt.as_ref().and_then(|c| c.planner.last_committed()),
            boundaries: self.boundaries,
            trace,
            tier: None,
        }
    }
}

// Checkpoint specialization: only content-backed spaces can capture.
trait CheckpointCapable {
    fn do_checkpoint_inner(
        &self,
        ckpt: &mut RankCheckpointer,
        tracker: &mut WriteTracker,
        ep: &mut Endpoint,
        model: &dyn AppModel,
        now: SimTime,
    ) -> Result<SimTime, RunError>;
}

impl CheckpointCapable for SparseSpace {
    fn do_checkpoint_inner(
        &self,
        _ckpt: &mut RankCheckpointer,
        _tracker: &mut WriteTracker,
        _ep: &mut Endpoint,
        _model: &dyn AppModel,
        now: SimTime,
    ) -> Result<SimTime, RunError> {
        // Sparse spaces carry no contents; checkpointing them is a
        // configuration error guarded at the entry points.
        unreachable!("checkpointing requires a BackedSpace, got SparseSpace at {now}")
    }
}

impl CheckpointCapable for BackedSpace {
    fn do_checkpoint_inner(
        &self,
        ckpt: &mut RankCheckpointer,
        tracker: &mut WriteTracker,
        ep: &mut Endpoint,
        model: &dyn AppModel,
        now: SimTime,
    ) -> Result<SimTime, RunError> {
        ckpt.take(self, tracker, ep, model, now)
    }
}

impl<S: AddressSpace + ContentWrite + CheckpointCapable> RankRunner<'_, S> {
    fn do_checkpoint(&mut self, ckpt: &mut RankCheckpointer) -> Result<SimTime, RunError> {
        self.space.do_checkpoint_inner(
            ckpt,
            &mut self.tracker,
            &mut self.ep,
            self.model.as_ref(),
            self.clock,
        )
    }
}

/// Find the newest committed generation in a store (delegates to
/// `ickpt-core`, re-exported here for runner users).
pub fn last_committed(store: &dyn StableStorage, nranks: u32) -> Option<u64> {
    latest_committed_generation(store, nranks).ok().flatten()
}

#[cfg(test)]
mod arena_tests {
    use super::RankArena;

    #[test]
    fn arena_recycles_scratch_across_leases() {
        let arena = RankArena::new();
        assert_eq!(arena.pooled(), 0);
        let a = arena.acquire();
        let b = arena.acquire();
        arena.release(a);
        arena.release(b);
        assert_eq!(arena.pooled(), 2);
        // A lease drains the pool instead of allocating fresh.
        let _c = arena.acquire();
        assert_eq!(arena.pooled(), 1);
    }
}
