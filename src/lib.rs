//! # ickpt — incremental checkpointing for scientific computing
//!
//! A production-quality reproduction of **Sancho, Petrini, Johnson,
//! Fernández, Frachtenberg: "On the Feasibility of Incremental
//! Checkpointing for Scientific Computing", IPDPS 2004** (LANL).
//!
//! The paper instruments unmodified Fortran/MPI codes on a 64-CPU
//! Itanium-II / Quadrics QsNet cluster with an `mprotect`+`SIGSEGV`
//! dirty-page tracker, and shows that the bandwidth an incremental
//! checkpointer needs (the *Incremental Bandwidth*) is far below what
//! commodity networks and disks provide — so automatic, user-
//! transparent, frequent checkpointing is feasible.
//!
//! This workspace rebuilds the whole stack (see `DESIGN.md`):
//!
//! | crate | role |
//! |---|---|
//! | [`mem`] | simulated UNIX address space (pages, heap, mmap, dirty bitmaps) |
//! | [`sim`] | virtual time, bandwidth devices, deterministic PRNG |
//! | [`net`] | MPI-like messaging + QsNet model |
//! | [`apps`] | Sage / Sweep3D / NAS BT,SP,LU,FT memory-access models |
//! | [`storage`] | checkpoint chunks, manifests, stores, throttling |
//! | [`core`] | **the contribution**: write tracking, IWS/IB metrics, checkpoint/restore, coordination, feasibility |
//! | [`native`] | the real `mprotect`/`SIGSEGV` mechanism via libc |
//! | [`analysis`] | series/stats/tables/plots for the experiment harness |
//!
//! This facade crate adds [`cluster`]: the runner that executes
//! application models on rank threads over virtual time, with tracking,
//! coordinated checkpointing, failure injection and rollback recovery.
//!
//! ## Quickstart
//!
//! ```
//! use ickpt::apps::Workload;
//! use ickpt::cluster::{characterize, CharacterizationConfig};
//! use ickpt::core::metrics::IbStats;
//! use ickpt::sim::{SimDuration, SimTime};
//!
//! // Run a scaled-down Sage on 4 simulated ranks for 100 virtual
//! // seconds with a 1 s checkpoint timeslice.
//! let cfg = CharacterizationConfig {
//!     nranks: 4,
//!     scale: 0.02,
//!     run_for: SimDuration::from_secs(100),
//!     timeslice: SimDuration::from_secs(1),
//!     ..Default::default()
//! };
//! let report = characterize(Workload::Sage50, &cfg);
//! let stats = IbStats::from_samples(
//!     &report.ranks[0].samples,
//!     SimDuration::from_secs(1),
//!     SimTime::from_secs(5), // skip the initialization burst
//! );
//! assert!(stats.avg_mbps > 0.0);
//! ```

pub use ickpt_analysis as analysis;
pub use ickpt_apps as apps;
pub use ickpt_core as core;
pub use ickpt_mem as mem;
pub use ickpt_native as native;
pub use ickpt_net as net;
pub use ickpt_obs as obs;
pub use ickpt_sim as sim;
pub use ickpt_storage as storage;
pub use ickpt_svc as svc;

pub mod cluster;
