//! Determinism guarantees: every simulated run is a pure function of
//! its configuration and seed, independent of OS thread scheduling.
//! This is what makes the reproduction's numbers citable — re-running
//! any experiment gives bit-identical output.

use ickpt::net::{CommWorld, Endpoint, NetConfig};
use ickpt::sim::rendezvous::Combine;
use ickpt::sim::{SimTime, SplitMix64};

/// Run a randomized-but-seeded communication script over `nranks`
/// threads and return each rank's final virtual clock.
fn run_script(seed: u64, nranks: usize, steps: usize) -> Vec<SimTime> {
    let world = CommWorld::new(nranks, NetConfig::qsnet());
    let endpoints = world.endpoints();
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, mut ep): (usize, Endpoint)| {
                scope.spawn(move || {
                    let mut clock = SimTime::ZERO;
                    // All ranks derive the same script from the seed, so
                    // sends and receives pair up; per-rank payloads vary.
                    let mut script = SplitMix64::new(seed);
                    let mut mine = SplitMix64::for_rank(seed, rank);
                    for step in 0..steps {
                        match script.next_below(4) {
                            0 => {
                                // Ring exchange with per-rank payloads.
                                let right = (rank + 1) % nranks;
                                let left = (rank + nranks - 1) % nranks;
                                let bytes = 1 + mine.next_below(100_000);
                                clock = ep.send(clock, right, step as u32, bytes).unwrap();
                                let info = ep.recv(clock, left, step as u32).unwrap();
                                clock = info.new_time;
                            }
                            1 => {
                                clock = ep.barrier(clock);
                            }
                            2 => {
                                let info = ep.allreduce(
                                    clock,
                                    script.next_below(10_000),
                                    mine.next_u64(),
                                    Combine::Max,
                                );
                                clock = info.new_time;
                            }
                            _ => {
                                let info = ep.alltoall(clock, 1 + script.next_below(50_000));
                                clock = info.new_time;
                            }
                        }
                    }
                    clock
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn randomized_communication_scripts_are_schedule_independent() {
    for seed in [1u64, 42, 0xDEAD] {
        let a = run_script(seed, 4, 60);
        let b = run_script(seed, 4, 60);
        let c = run_script(seed, 4, 60);
        assert_eq!(a, b, "seed {seed}: two runs diverged");
        assert_eq!(b, c, "seed {seed}: third run diverged");
        // Different seeds must actually exercise different timings.
        assert_ne!(run_script(seed ^ 1, 4, 60), a);
    }
}

#[test]
fn determinism_holds_across_rank_counts() {
    for nranks in [2usize, 3, 8] {
        let a = run_script(7, nranks, 40);
        let b = run_script(7, nranks, 40);
        assert_eq!(a, b, "{nranks} ranks");
    }
}

#[test]
fn fault_tolerant_recovery_is_deterministic_too() {
    use ickpt::apps::synthetic::{SyntheticApp, SyntheticConfig};
    use ickpt::cluster::{
        run_fault_tolerant, CheckpointMode, FailureSpec, FaultTolerantConfig, StoragePath,
    };
    use ickpt::core::coordinator::CheckpointPolicy;
    use ickpt::mem::{LayoutBuilder, PAGE_SIZE};
    use ickpt::sim::{DevicePreset, SimDuration};
    use ickpt::storage::MemStore;
    use std::sync::Arc;

    let layout = LayoutBuilder::new()
        .static_bytes(PAGE_SIZE)
        .heap_capacity_bytes(2048 * PAGE_SIZE)
        .mmap_capacity_bytes(PAGE_SIZE)
        .build();
    let run = || {
        let cfg = FaultTolerantConfig {
            nranks: 3,
            max_iterations: 10,
            timeslice: SimDuration::from_secs(1),
            policy: CheckpointPolicy::incremental(SimDuration::from_secs(3), 0),
            store: Arc::new(MemStore::new()),
            device: DevicePreset::ScsiDisk,
            mode: CheckpointMode::StopAndCopy,
            storage_path: StoragePath::PerRank,
            failures: vec![FailureSpec::process(1, SimTime::from_secs(6))],
            net: NetConfig::qsnet(),
            max_attempts: 3,
            redundancy: None,
            obs: ickpt::obs::Recorder::disabled(),
            dedup: None,
            write_profile: Default::default(),
        };
        let report = run_fault_tolerant(&cfg, layout, |rank| {
            Box::new(SyntheticApp::new(SyntheticConfig {
                exchange_bytes: 4096,
                rank,
                nranks: 3,
                ..Default::default()
            }))
        })
        .unwrap();
        (
            report.attempts,
            report.wasted,
            report.ranks.iter().map(|r| (r.final_time, r.content_digest)).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

/// The flight recorder inherits the simulation's determinism: a traced
/// run exports byte-identical JSONL and Chrome JSON every time, the
/// Chrome export is well-formed, and per-track virtual timestamps are
/// monotone.
#[test]
fn flight_recorder_export_is_deterministic() {
    use ickpt::apps::synthetic::{SyntheticApp, SyntheticConfig};
    use ickpt::cluster::{
        run_fault_tolerant, CheckpointMode, FailureSpec, FaultTolerantConfig, StoragePath,
    };
    use ickpt::core::coordinator::CheckpointPolicy;
    use ickpt::mem::{LayoutBuilder, PAGE_SIZE};
    use ickpt::obs::{chrome_trace, jsonl, parse_jsonl, validate_json, FlightRecorder, Recorder};
    use ickpt::sim::{DevicePreset, SimDuration};
    use ickpt::storage::MemStore;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    let layout = LayoutBuilder::new()
        .static_bytes(PAGE_SIZE)
        .heap_capacity_bytes(2048 * PAGE_SIZE)
        .mmap_capacity_bytes(PAGE_SIZE)
        .build();
    let traced_run = || {
        let fr = FlightRecorder::with_default_capacity();
        fr.name_group(0, "determinism");
        let cfg = FaultTolerantConfig {
            nranks: 3,
            max_iterations: 10,
            timeslice: SimDuration::from_secs(1),
            policy: CheckpointPolicy::incremental(SimDuration::from_secs(3), 0),
            store: Arc::new(MemStore::new()),
            device: DevicePreset::ScsiDisk,
            mode: CheckpointMode::StopAndCopy,
            storage_path: StoragePath::PerRank,
            failures: vec![FailureSpec::process(1, SimTime::from_secs(6))],
            net: NetConfig::qsnet(),
            max_attempts: 3,
            redundancy: None,
            obs: Recorder::new(fr.clone()),
            dedup: None,
            write_profile: Default::default(),
        };
        run_fault_tolerant(&cfg, layout, |rank| {
            Box::new(SyntheticApp::new(SyntheticConfig {
                exchange_bytes: 4096,
                rank,
                nranks: 3,
                ..Default::default()
            }))
        })
        .unwrap();
        let snap = fr.snapshot();
        (jsonl(&snap), chrome_trace(&snap))
    };
    let (jl_a, chrome_a) = traced_run();
    let (jl_b, chrome_b) = traced_run();
    assert_eq!(jl_a, jl_b, "JSONL export must be byte-identical run to run");
    assert_eq!(chrome_a, chrome_b, "Chrome export must be byte-identical run to run");
    assert!(!jl_a.is_empty(), "the instrumented run must record events");

    validate_json(&chrome_a).expect("Chrome trace is well-formed JSON");

    // Per-track monotone virtual time, and all the expected lanes show
    // up (3 rank lanes + per-rank storage device lanes + run lane).
    let events = parse_jsonl(&jl_a).expect("exporter output parses back");
    let mut last: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in &events {
        let prev = last.entry(ev.track.as_str()).or_insert(0);
        assert!(ev.ts >= *prev, "track {} goes backwards: {} after {}", ev.track, ev.ts, prev);
        *prev = ev.ts;
    }
    for track in ["run", "rank0", "rank1", "rank2", "dev:storage:0"] {
        assert!(last.contains_key(track), "expected track {track} in trace");
    }
    // The injected failure must surface as recovery events on the run
    // lane.
    assert!(events.iter().any(|e| e.name == "failure"), "failure event recorded");
    assert!(events.iter().any(|e| e.name == "recovery_plan"), "recovery plan recorded");
}
