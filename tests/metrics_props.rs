//! Property pins for the live metrics plane (`ickpt::obs::metrics`):
//! snapshots must be byte-identical at any worker count or OS
//! schedule, histogram folding must be associative (tree-reduce ≡
//! flat fold), quantile estimates must land in the same log₂ bucket
//! as the exact nearest-rank reference, and windowed accumulators
//! must re-bin consistently — their sums agree with the run-wide
//! counters and with the flight recorder's own `ObsSummary`.

use std::sync::Arc;

use ickpt::apps::synthetic::{SyntheticApp, SyntheticConfig};
use ickpt::apps::Workload;
use ickpt::cluster::{
    characterize, run_fault_tolerant, CharacterizationConfig, CheckpointMode, FailureSpec,
    FaultTolerantConfig, RunReport, StoragePath,
};
use ickpt::core::coordinator::CheckpointPolicy;
use ickpt::mem::{LayoutBuilder, PAGE_SIZE};
use ickpt::net::NetConfig;
use ickpt::obs::{
    bucket_of, FlightRecorder, LogHistogram, MetricsPlane, MetricsView, ObsSummary, Recorder,
};
use ickpt::sim::{DevicePreset, SimDuration, SimTime, SplitMix64};
use ickpt::storage::MemStore;

const NRANKS: usize = 3;

/// The determinism-suite fault-tolerant run (one mid-run process
/// failure, incremental checkpoints every 3 s) with a metrics plane —
/// and optionally a flight recorder — teed into the instrumentation.
fn ft_run(plane: &Arc<MetricsPlane>, fr: Option<&Arc<FlightRecorder>>) -> RunReport {
    plane.name_group(0, "ft");
    let rec = match fr {
        Some(fr) => {
            fr.name_group(0, "ft");
            Recorder::new(fr.clone())
        }
        None => Recorder::disabled(),
    };
    let cfg = FaultTolerantConfig {
        nranks: NRANKS,
        max_iterations: 12,
        timeslice: SimDuration::from_secs(1),
        policy: CheckpointPolicy::incremental(SimDuration::from_secs(3), 0),
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::Shared,
        failures: vec![FailureSpec::process(1, SimTime::from_secs(6))],
        net: NetConfig::qsnet(),
        redundancy: None,
        max_attempts: 4,
        obs: rec.with_metrics(plane.clone()),
        dedup: None,
        write_profile: Default::default(),
    };
    let layout = LayoutBuilder::new()
        .static_bytes(PAGE_SIZE)
        .heap_capacity_bytes(2048 * PAGE_SIZE)
        .mmap_capacity_bytes(PAGE_SIZE)
        .build();
    run_fault_tolerant(&cfg, layout, |rank| {
        Box::new(SyntheticApp::new(SyntheticConfig {
            exchange_bytes: 8192,
            rank,
            nranks: NRANKS,
            ..Default::default()
        }))
    })
    .expect("simulated run completes")
}

#[test]
fn fault_tolerant_snapshots_are_schedule_independent() {
    let renders: Vec<String> = (0..3)
        .map(|_| {
            let plane = MetricsPlane::new(SimDuration::from_secs(1));
            ft_run(&plane, None);
            plane.render_text()
        })
        .collect();
    assert!(
        renders[0].contains("ickpt_captures_total{run=\"ft\"}"),
        "snapshot should carry live capture counters:\n{}",
        renders[0]
    );
    assert!(renders[0].contains("ickpt_stall_ns{run=\"ft\",quantile=\"0.99\"}"));
    assert_eq!(renders[0], renders[1], "second run produced a different snapshot");
    assert_eq!(renders[1], renders[2], "third run produced a different snapshot");
}

#[test]
fn snapshots_are_identical_across_worker_counts() {
    let render_with = |workers: usize| {
        let plane = MetricsPlane::new(SimDuration::from_secs(1));
        plane.name_group(0, "chr");
        let cfg = CharacterizationConfig {
            nranks: 4,
            scale: 0.02,
            run_for: SimDuration::from_secs(30),
            obs: Recorder::disabled().with_metrics(plane.clone()),
            workers: Some(workers),
            ..Default::default()
        };
        characterize(Workload::Sage50, &cfg);
        let view = plane.view(0).expect("group 0 populated");
        assert!(view.counter("tracker_windows") > 0, "characterization fed no events");
        plane.render_text()
    };
    let one = render_with(1);
    assert_eq!(one, render_with(2), "2 workers changed the snapshot bytes");
    assert_eq!(one, render_with(8), "8 workers changed the snapshot bytes");
}

/// Seeded value stream mixing magnitudes across many log₂ buckets
/// (zeros, cache-line-scale, MB-scale, outliers).
fn sample_values(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| match rng.next_below(4) {
            0 => rng.next_below(3),
            1 => 64 + rng.next_below(4096),
            2 => 1_000_000 + rng.next_below(30_000_000),
            _ => rng.next_u64() >> (rng.next_below(40) + 8),
        })
        .collect()
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    let shards: Vec<LogHistogram> = (0..16)
        .map(|i| {
            let mut h = LogHistogram::new();
            for v in sample_values(0xC0FFEE ^ i, 200) {
                h.record(v);
            }
            h
        })
        .collect();

    // Flat left fold.
    let mut flat = LogHistogram::new();
    for s in &shards {
        flat.merge(s);
    }
    // Flat right-to-left fold (commutativity).
    let mut rev = LogHistogram::new();
    for s in shards.iter().rev() {
        rev.merge(s);
    }
    // Pairwise tree reduce (associativity), as a drain tree would.
    let mut level = shards.clone();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                let mut m = pair[0].clone();
                if let Some(r) = pair.get(1) {
                    m.merge(r);
                }
                m
            })
            .collect();
    }
    assert_eq!(flat, rev, "merge is not commutative");
    assert_eq!(flat, level[0], "tree reduce diverged from flat fold");
    assert_eq!(flat.count(), 16 * 200);
}

#[test]
fn quantiles_land_in_the_exact_nearest_rank_bucket() {
    for seed in [1u64, 7, 0xBEEF, 0x5EED_5EED] {
        for n in [1usize, 2, 17, 500, 4096] {
            let values = sample_values(seed, n);
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for pct in [50u8, 90, 99] {
                let rank = ((pct as u64 * n as u64).div_ceil(100)).max(1);
                let exact = sorted[(rank - 1) as usize];
                let est = h.quantile(pct).expect("non-empty histogram");
                assert_eq!(
                    bucket_of(est),
                    bucket_of(exact),
                    "seed {seed} n {n} p{pct}: estimate {est} not in exact value {exact}'s \
                     log2 bucket"
                );
            }
        }
    }
}

/// Sum a per-window field over every populated window.
fn window_sum(view: &MetricsView, f: impl Fn(&ickpt::obs::WindowAccum) -> u64) -> u64 {
    view.windows().map(|(_, w)| f(w)).sum()
}

#[test]
fn windows_rebin_consistently_and_agree_with_obs_summary() {
    // Same deterministic run, binned at 1 s and at 4 s, with a flight
    // recorder alongside for the ObsSummary cross-check.
    let fine = MetricsPlane::new(SimDuration::from_secs(1));
    let fr = FlightRecorder::with_default_capacity();
    ft_run(&fine, Some(&fr));
    let coarse = MetricsPlane::new(SimDuration::from_secs(4));
    ft_run(&coarse, None);

    let fv = fine.view(0).expect("fine plane populated");
    let cv = coarse.view(0).expect("coarse plane populated");
    assert!(fv.window_count() >= cv.window_count(), "coarser bins cannot yield more windows");

    // Re-binning must only move mass between windows, never change
    // totals: merged windows agree field-for-field and with the
    // run-wide counters.
    let fm = fv.merged_windows();
    let cm = cv.merged_windows();
    assert_eq!(fm.captures, cm.captures);
    assert_eq!(fm.effective_ib_bytes, cm.effective_ib_bytes);
    assert_eq!(fm.dirty_ib_bytes, cm.dirty_ib_bytes);
    assert_eq!(fm.stall_ns, cm.stall_ns);
    assert_eq!(fm.device_busy_ns, cm.device_busy_ns);
    assert_eq!(fm.stall.count(), cm.stall.count());
    assert_eq!(fm.stall.sum(), cm.stall.sum());

    assert_eq!(fm.captures, fv.counter("captures"));
    assert_eq!(fm.effective_ib_bytes, fv.counter("capture_bytes"));
    assert_eq!(fm.stall_ns, fv.counter("stall_ns"));
    assert_eq!(window_sum(&fv, |w| w.drain_bytes), fv.counter("drain_bytes"));

    // And the recorder's own aggregate view of the very same events
    // must agree with the plane's counters.
    let summary = ObsSummary::from_snapshot(&fr.snapshot());
    let ranks = &summary.ranks;
    assert_eq!(ranks.iter().map(|r| r.captures).sum::<u64>(), fv.counter("captures"));
    assert_eq!(ranks.iter().map(|r| r.capture_bytes).sum::<u64>(), fv.counter("capture_bytes"));
    assert_eq!(ranks.iter().map(|r| r.stall_ns).sum::<u64>(), fv.counter("stall_ns"));
}
