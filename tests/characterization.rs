//! End-to-end characterization runs: the paper's methodology on the
//! simulated cluster, at test scale.

use ickpt::apps::synthetic::{SyntheticApp, SyntheticConfig};
use ickpt::apps::Workload;
use ickpt::cluster::{characterize, characterize_model, CharacterizationConfig};
use ickpt::core::metrics::IbStats;
use ickpt::mem::{LayoutBuilder, PAGE_SIZE};
use ickpt::sim::{SimDuration, SimTime};

fn small(nranks: usize, run_secs: u64) -> CharacterizationConfig {
    CharacterizationConfig {
        nranks,
        scale: 0.02,
        run_for: SimDuration::from_secs(run_secs),
        ..Default::default()
    }
}

#[test]
fn synthetic_app_iws_matches_hand_computation() {
    // 256 pages written per 1 s iteration over a 0.5 s burst, 1 s
    // timeslice: every full window during steady state must report
    // exactly 256 dirty pages.
    let layout = LayoutBuilder::new()
        .static_bytes(PAGE_SIZE)
        .heap_capacity_bytes(2048 * PAGE_SIZE)
        .mmap_capacity_bytes(PAGE_SIZE)
        .build();
    let cfg = CharacterizationConfig {
        nranks: 1,
        run_for: SimDuration::from_secs(10),
        ..Default::default()
    };
    let report = characterize_model(&cfg, layout, |_| {
        Box::new(SyntheticApp::new(SyntheticConfig::default()))
    });
    let samples = &report.ranks[0].samples;
    // Skip the init window (1024 pages first-touched in 0.1 s).
    let steady: Vec<u64> = samples
        .iter()
        .filter(|s| s.end_time > SimTime::from_secs(1))
        .map(|s| s.iws_pages)
        .collect();
    assert!(!steady.is_empty());
    for (i, &iws) in steady.iter().enumerate() {
        assert!(
            iws == 256 || iws == 0 || iws == 512,
            "window {i}: unexpected IWS {iws} (iteration drift at window edges)"
        );
    }
    let avg = steady.iter().sum::<u64>() as f64 / steady.len() as f64;
    assert!((avg - 256.0).abs() < 40.0, "steady-state average {avg} ~ 256 pages/s");
}

#[test]
fn runs_are_deterministic() {
    let cfg = small(4, 60);
    let a = characterize(Workload::NasLu, &cfg);
    let b = characterize(Workload::NasLu, &cfg);
    for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
        assert_eq!(ra.samples, rb.samples, "rank {} samples differ across runs", ra.rank);
        assert_eq!(ra.total_faults, rb.total_faults);
        assert_eq!(ra.final_time, rb.final_time);
    }
}

#[test]
fn all_workloads_run_on_four_ranks() {
    for w in Workload::ALL {
        let run_secs = (4.0 * w.calib().period_s).ceil().max(20.0) as u64;
        let report = characterize(w, &small(4, run_secs));
        assert_eq!(report.ranks.len(), 4, "{}", w.name());
        for r in &report.ranks {
            assert!(
                r.iterations >= 2,
                "{}: rank {} only {} iterations",
                w.name(),
                r.rank,
                r.iterations
            );
            assert!(r.total_faults > 0, "{}", w.name());
            assert!(!r.samples.is_empty(), "{}", w.name());
        }
        // Bulk-synchronous: all ranks end at the same virtual time and
        // iteration count.
        let t0 = report.ranks[0].final_time;
        assert!(report.ranks.iter().all(|r| r.final_time == t0), "{}", w.name());
        let i0 = report.ranks[0].iterations;
        assert!(report.ranks.iter().all(|r| r.iterations == i0), "{}", w.name());
    }
}

#[test]
fn ib_decreases_with_longer_timeslices() {
    // Fig 2's headline shape: average IB decays as the timeslice grows
    // (page reuse within longer windows).
    let mut results = Vec::new();
    for ts in [1u64, 5, 20] {
        let cfg = CharacterizationConfig {
            nranks: 2,
            scale: 0.02,
            run_for: SimDuration::from_secs(120),
            timeslice: SimDuration::from_secs(ts),
            ..Default::default()
        };
        let report = characterize(Workload::Sage50, &cfg);
        let stats = IbStats::from_samples(
            &report.ranks[0].samples,
            SimDuration::from_secs(ts),
            SimTime::from_secs(25), // skip init + first partial period
        );
        assert!(stats.windows > 0, "timeslice {ts}");
        results.push(stats.avg_mbps);
    }
    assert!(
        results[0] > results[1] && results[1] > results[2],
        "avg IB must decay with timeslice: {results:?}"
    );
}

#[test]
fn sage_shows_periodic_bursts() {
    // Fig 1(a): write bursts every iteration period.
    let cfg = CharacterizationConfig {
        nranks: 2,
        scale: 0.02,
        run_for: SimDuration::from_secs(90), // Sage-50 period = 20 s
        ..Default::default()
    };
    let report = characterize(Workload::Sage50, &cfg);
    let samples = &report.ranks[0].samples;
    let series: Vec<u64> = samples.iter().map(|s| s.iws_pages).collect();
    let detected = ickpt::core::policy::detect_period(
        &series,
        SimDuration::from_secs(1),
        5, // skip the init burst
    );
    let period = detected.expect("Sage must show a detectable period").as_secs_f64();
    assert!((period - 20.0).abs() < 4.0, "detected period {period} s vs calibrated 20 s");
}

#[test]
fn communication_is_recorded_per_window() {
    let cfg = small(4, 60);
    let report = characterize(Workload::NasLu, &cfg);
    for r in &report.ranks {
        assert!(r.bytes_received > 0, "rank {} received nothing", r.rank);
        let window_total: u64 = r.samples.iter().map(|s| s.bytes_received).sum();
        assert!(window_total > 0, "per-window traffic series is empty");
    }
}

#[test]
fn weak_scaling_keeps_per_rank_ib_stable() {
    // Fig 5: per-process IB does not grow with processor count.
    let mut avgs = Vec::new();
    for nranks in [2usize, 8] {
        let cfg = CharacterizationConfig {
            nranks,
            scale: 0.02,
            run_for: SimDuration::from_secs(120),
            ..Default::default()
        };
        let report = characterize(Workload::Sage50, &cfg);
        let stats = IbStats::from_samples(
            &report.ranks[0].samples,
            SimDuration::from_secs(1),
            SimTime::from_secs(25),
        );
        avgs.push(stats.avg_mbps);
    }
    let ratio = avgs[1] / avgs[0];
    assert!(
        (0.85..=1.02).contains(&ratio),
        "per-rank IB at 8 ranks should be ≈ (slightly below) 2 ranks: {avgs:?}"
    );
}

#[test]
fn single_rank_runs_degenerate_gracefully() {
    // Collectives over one party, no neighbors, no traffic: the
    // characterization must still sample and detect structure.
    let cfg = CharacterizationConfig {
        nranks: 1,
        scale: 0.02,
        run_for: SimDuration::from_secs(80),
        ..Default::default()
    };
    let report = characterize(Workload::Sage50, &cfg);
    assert_eq!(report.ranks.len(), 1);
    let r0 = &report.ranks[0];
    assert!(r0.iterations >= 3);
    assert!(r0.total_faults > 0);
    let series: Vec<u64> = r0.samples.iter().map(|s| s.iws_pages).collect();
    let period = ickpt::core::policy::detect_period(&series, SimDuration::from_secs(1), 5);
    assert!(period.is_some(), "periodicity survives the single-rank case");
}

#[test]
fn intrusiveness_accounting() {
    // §6.5: fault overhead at a 1 s timeslice stays below 10 % and
    // shrinks with longer timeslices.
    let mut overheads = Vec::new();
    for ts in [1u64, 10] {
        let cfg = CharacterizationConfig {
            nranks: 2,
            scale: 0.02,
            run_for: SimDuration::from_secs(100),
            timeslice: SimDuration::from_secs(ts),
            fault_cost: SimDuration::from_micros(10),
            ..Default::default()
        };
        let report = characterize(Workload::Sage50, &cfg);
        let r = &report.ranks[0];
        let slowdown = r.overhead.as_secs_f64() / r.final_time.as_secs_f64();
        overheads.push(slowdown);
    }
    assert!(overheads[0] < 0.10, "slowdown at 1 s = {:.3}", overheads[0]);
    assert!(overheads[1] < overheads[0], "longer timeslice must be less intrusive");
}
