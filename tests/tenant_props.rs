//! Properties of the multi-tenant checkpoint service (`ickpt-svc`):
//!
//! * **Determinism** — the same `ServiceConfig` yields a bit-identical
//!   `ServiceReport` on every run, for every scheduling policy.
//! * **Conservation** — bytes drained per tenant, the fleet aggregate,
//!   and the per-device byte counters all describe the same traffic.
//! * **Isolation** — a tenant's report is byte-identical whether it
//!   runs alone or alongside neighbours that never issue a request:
//!   jitter, stagger and admission state are keyed per tenant, never
//!   by fleet composition.
//! * **Tree ≡ flat** — `reduce_tenants` at any fan-in arity equals the
//!   flat left fold over `ServiceAggregate::merge`.
//! * **Percentiles** — `percentile_ns` is the nearest-rank statistic
//!   of the sorted samples, for any sample set.

use ickpt::cluster::tenant::{fleet_profiles, mixed_fleet};
use ickpt::obs::Recorder;
use ickpt::sim::{SimDuration, SplitMix64};
use ickpt::svc::{
    percentile_ns, reduce_tenants, run_service, SchedPolicy, ServiceAggregate, ServiceConfig,
    TenantProfile,
};

const SEED: u64 = 0x7e9a_2004;

/// A small contended fleet: n mixed tenants, 2 devices, short horizon
/// so the whole suite stays cheap.
fn small_cfg(n: usize, policy: SchedPolicy) -> ServiceConfig {
    let fleet = mixed_fleet(n, 0.01, SEED);
    let mut cfg = ServiceConfig::new(fleet_profiles(&fleet), SimDuration::from_secs(60));
    cfg.devices = 2;
    cfg.policy = policy;
    cfg.seed = SEED;
    cfg.with_fair_admission(4)
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

#[test]
fn service_reports_are_bit_identical_across_runs() {
    for policy in [SchedPolicy::FairShare, SchedPolicy::Fifo, SchedPolicy::StrictPriority] {
        let a = run_service(&small_cfg(16, policy), &Recorder::disabled());
        let b = run_service(&small_cfg(16, policy), &Recorder::disabled());
        assert_eq!(a, b, "policy {policy:?} must be deterministic");
        assert!(a.aggregate.checkpoints > 0, "the fleet must actually checkpoint");
    }
}

// ---------------------------------------------------------------------
// Conservation
// ---------------------------------------------------------------------

#[test]
fn drained_bytes_balance_tenants_aggregate_and_devices() {
    for n in [1usize, 5, 17] {
        let report = run_service(&small_cfg(n, SchedPolicy::FairShare), &Recorder::disabled());
        let per_tenant: u64 = report.tenants.iter().map(|t| t.drained_bytes).sum();
        let per_device: u64 = report.device_bytes.iter().sum();
        assert_eq!(per_tenant, report.aggregate.drained_bytes, "fleet of {n}");
        assert_eq!(per_tenant, per_device, "fleet of {n}");
        for t in &report.tenants {
            assert!(
                t.drained_bytes <= t.admitted_bytes,
                "tenant {} drained more than it was admitted",
                t.id
            );
            assert_eq!(t.stalls_ns.len() as u64, t.checkpoints);
        }
    }
}

// ---------------------------------------------------------------------
// Isolation
// ---------------------------------------------------------------------

/// A profile whose first arrival falls past `run_for`, so it never
/// issues a request. Stagger is drawn in `[0, interval)` keyed by
/// `(seed, id)`; with a ~116-day interval and a 60 s horizon almost
/// every id qualifies — we scan for the first few and assert it.
fn idle_profiles(active: &TenantProfile, run_for: SimDuration, want: usize) -> Vec<TenantProfile> {
    let idle = TenantProfile {
        workload: active.workload,
        weight: 1,
        request_bytes: active.request_bytes,
        interval: SimDuration::from_secs(10_000_000),
    };
    let mut out = Vec::new();
    // Ids start at 1: the active tenant under test is always id 0.
    for id in 1u32.. {
        if out.len() == want {
            break;
        }
        if idle.stagger(SEED, id) > run_for {
            out.push(idle);
        } else {
            // Deterministic, so a collision here is a config bug in the
            // test, not flakiness.
            panic!("id {id} staggers inside the horizon; widen the idle interval");
        }
    }
    out
}

#[test]
fn tenant_report_is_unchanged_by_idle_neighbours() {
    let run_for = SimDuration::from_secs(60);
    let fleet = mixed_fleet(1, 0.01, SEED);
    let active = fleet[0].profile;

    let mut alone = ServiceConfig::new(vec![active], run_for);
    alone.devices = 2;
    alone.seed = SEED;

    let mut crowd_tenants = vec![active];
    crowd_tenants.extend(idle_profiles(&active, run_for, 3));
    let mut crowd = ServiceConfig::new(crowd_tenants, run_for);
    crowd.devices = 2;
    crowd.seed = SEED;

    // Default admission sizes buckets per tenant weight only, so the
    // active tenant's admission stream is fleet-independent.
    let a = run_service(&alone, &Recorder::disabled());
    let b = run_service(&crowd, &Recorder::disabled());

    assert_eq!(a.tenants[0], b.tenants[0], "idle neighbours must not perturb tenant 0");
    for idle in &b.tenants[1..] {
        assert_eq!(idle.checkpoints, 0);
        assert_eq!(idle.admitted_bytes, 0);
        assert_eq!(idle.drained_bytes, 0);
    }
    assert_eq!(a.aggregate.drained_bytes, b.aggregate.drained_bytes);
}

// ---------------------------------------------------------------------
// Tree-reduce vs flat fold
// ---------------------------------------------------------------------

#[test]
fn reduce_tenants_is_arity_invariant_and_matches_flat_fold() {
    let report = run_service(&small_cfg(33, SchedPolicy::FairShare), &Recorder::disabled());

    let mut flat = ServiceAggregate::default();
    for t in &report.tenants {
        flat.merge(&ServiceAggregate::from_tenant(t));
    }

    for arity in [2usize, 3, 8, 32, 1000] {
        assert_eq!(reduce_tenants(&report.tenants, arity), flat, "arity {arity}");
    }
    // The run's own aggregate came down the same tree.
    assert_eq!(report.aggregate, flat);
    assert_eq!(reduce_tenants(&[], 2), ServiceAggregate::default());
}

// ---------------------------------------------------------------------
// Nearest-rank percentiles
// ---------------------------------------------------------------------

#[test]
fn percentile_ns_is_the_nearest_rank_statistic() {
    assert_eq!(percentile_ns(&[], 99), 0);
    assert_eq!(percentile_ns(&[7], 1), 7);
    assert_eq!(percentile_ns(&[7], 100), 7);

    let mut rng = SplitMix64::new(SEED);
    for n in [1usize, 2, 3, 10, 101] {
        let samples: Vec<u64> = (0..n).map(|_| rng.next_u64() % 1_000_000).collect();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for pct in [1u64, 50, 90, 99, 100] {
            let rank = (pct * n as u64).div_ceil(100).max(1) as usize;
            assert_eq!(percentile_ns(&samples, pct), sorted[rank - 1], "n={n} pct={pct}");
        }
    }
}
