//! End-to-end fault tolerance: coordinated incremental checkpoints,
//! injected failures, rollback recovery, and byte-exact equivalence
//! with a failure-free execution.

use std::sync::Arc;

use ickpt::apps::synthetic::{SyntheticApp, SyntheticConfig};
use ickpt::apps::Workload;
use ickpt::cluster::{
    run_fault_tolerant, CheckpointMode, FailureKind, FailureSpec, FaultTolerantConfig,
    RedundancyConfig, RunOutcome, StoragePath,
};
use ickpt::core::coordinator::CheckpointPolicy;
use ickpt::mem::{DataLayout, LayoutBuilder, PAGE_SIZE};
use ickpt::net::NetConfig;
use ickpt::sim::{DevicePreset, SimDuration, SimTime};
use ickpt::storage::{DrainTopology, MemStore, RecoverySource, SchemeSpec};

fn synthetic_layout() -> DataLayout {
    LayoutBuilder::new()
        .static_bytes(PAGE_SIZE)
        .heap_capacity_bytes(2048 * PAGE_SIZE)
        .mmap_capacity_bytes(PAGE_SIZE)
        .build()
}

fn synthetic_cfg(
    nranks: usize,
    max_iterations: u64,
    failures: Vec<FailureSpec>,
) -> FaultTolerantConfig {
    FaultTolerantConfig {
        nranks,
        max_iterations,
        timeslice: SimDuration::from_secs(1),
        policy: CheckpointPolicy::incremental(SimDuration::from_secs(3), 0),
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::PerRank,
        failures,
        net: NetConfig::qsnet(),
        redundancy: None,
        obs: ickpt::obs::Recorder::disabled(),
        dedup: None,
        write_profile: Default::default(),
        max_attempts: 4,
    }
}

fn build_synthetic(nranks: usize) -> impl Fn(usize) -> Box<dyn ickpt::apps::AppModel> + Sync {
    move |rank| {
        Box::new(SyntheticApp::new(SyntheticConfig {
            exchange_bytes: 8192,
            rank,
            nranks,
            ..Default::default()
        }))
    }
}

#[test]
fn failure_free_run_checkpoints_and_completes() {
    let cfg = synthetic_cfg(4, 12, vec![]);
    let report = run_fault_tolerant(&cfg, synthetic_layout(), build_synthetic(4)).unwrap();
    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(report.attempts, 1);
    for r in &report.ranks {
        assert_eq!(r.iterations, 12);
        // ~12 virtual seconds / 3 s interval → ~4 checkpoints.
        assert!((3..=5).contains(&r.checkpoints), "rank {}: {} ckpts", r.rank, r.checkpoints);
        assert!(r.checkpoint_bytes > 0);
        assert!(r.content_digest.is_some());
        assert!(r.last_committed.is_some());
    }
    // Stable storage holds a committed manifest for every generation.
    let gens = cfg.store.list_manifests().unwrap();
    assert!(!gens.is_empty());
    for r in 0..4u32 {
        assert_eq!(cfg.store.list_generations(r).unwrap().len(), gens.len());
    }
}

#[test]
fn recovery_reproduces_failure_free_final_state() {
    // Reference: no failures.
    let cfg_ref = synthetic_cfg(4, 15, vec![]);
    let reference = run_fault_tolerant(&cfg_ref, synthetic_layout(), build_synthetic(4)).unwrap();
    assert_eq!(reference.outcome, RunOutcome::Completed);
    let ref_digests: Vec<_> = reference.ranks.iter().map(|r| r.content_digest.unwrap()).collect();

    // Same run, but rank 2 dies ~8 virtual seconds in.
    let cfg = synthetic_cfg(4, 15, vec![FailureSpec::process(2, SimTime::from_secs(8))]);
    let recovered = run_fault_tolerant(&cfg, synthetic_layout(), build_synthetic(4)).unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    assert_eq!(recovered.attempts, 2, "one failure, one recovery");
    let rec_digests: Vec<_> = recovered.ranks.iter().map(|r| r.content_digest.unwrap()).collect();
    assert_eq!(
        ref_digests, rec_digests,
        "rollback recovery must reproduce the failure-free memory image"
    );
    for (a, b) in reference.ranks.iter().zip(&recovered.ranks) {
        assert_eq!(a.iterations, b.iterations);
    }
}

#[test]
fn multiple_failures_multiple_recoveries() {
    let cfg_ref = synthetic_cfg(2, 20, vec![]);
    let reference = run_fault_tolerant(&cfg_ref, synthetic_layout(), build_synthetic(2)).unwrap();
    let ref_digests: Vec<_> = reference.ranks.iter().map(|r| r.content_digest.unwrap()).collect();

    let cfg = synthetic_cfg(
        2,
        20,
        vec![
            FailureSpec::process(0, SimTime::from_secs(6)),
            FailureSpec::process(1, SimTime::from_secs(13)),
        ],
    );
    let recovered = run_fault_tolerant(&cfg, synthetic_layout(), build_synthetic(2)).unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    assert_eq!(recovered.attempts, 3, "two failures, two recoveries");
    let rec_digests: Vec<_> = recovered.ranks.iter().map(|r| r.content_digest.unwrap()).collect();
    assert_eq!(ref_digests, rec_digests);
}

#[test]
fn failure_before_any_checkpoint_restarts_from_scratch() {
    // Checkpoint interval longer than the run: no generation ever
    // commits, so the failure triggers a cold restart from the
    // beginning — and the restarted run must still produce the same
    // final state as an undisturbed one.
    let mut cfg = synthetic_cfg(2, 10, vec![FailureSpec::process(0, SimTime::from_secs(2))]);
    cfg.policy = CheckpointPolicy::incremental(SimDuration::from_secs(1000), 0);
    let report = run_fault_tolerant(&cfg, synthetic_layout(), build_synthetic(2)).unwrap();
    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(report.attempts, 2, "one cold restart");

    let mut clean_cfg = synthetic_cfg(2, 10, vec![]);
    clean_cfg.policy = CheckpointPolicy::incremental(SimDuration::from_secs(1000), 0);
    let clean = run_fault_tolerant(&clean_cfg, synthetic_layout(), build_synthetic(2)).unwrap();
    for (a, b) in clean.ranks.iter().zip(&report.ranks) {
        assert_eq!(a.content_digest, b.content_digest);
    }
}

#[test]
fn incremental_checkpoints_are_smaller_than_full() {
    // The premise of the paper: after the base, increments move only
    // the working set.
    let cfg_incr = synthetic_cfg(2, 12, vec![]);
    let incr = run_fault_tolerant(&cfg_incr, synthetic_layout(), build_synthetic(2)).unwrap();

    let mut cfg_full = synthetic_cfg(2, 12, vec![]);
    cfg_full.policy = CheckpointPolicy::always_full(SimDuration::from_secs(3));
    let full = run_fault_tolerant(&cfg_full, synthetic_layout(), build_synthetic(2)).unwrap();

    let incr_bytes = incr.ranks[0].checkpoint_bytes;
    let full_bytes = full.ranks[0].checkpoint_bytes;
    assert!(
        // Synthetic writes 256 of 1024 pages per iteration: increments
        // should be ≈ 4x smaller after the shared base checkpoint.
        (incr_bytes as f64) < 0.5 * full_bytes as f64,
        "incremental {incr_bytes} vs full {full_bytes}"
    );
}

#[test]
fn forked_checkpoints_stall_less_and_still_recover() {
    // Same synthetic run under both modes: forked mode must stall the
    // application far less per checkpoint, eventually commit every
    // generation, and still support byte-exact recovery.
    let stop_cfg = synthetic_cfg(4, 15, vec![]);
    let stop = run_fault_tolerant(&stop_cfg, synthetic_layout(), build_synthetic(4)).unwrap();

    let mut fork_cfg = synthetic_cfg(4, 15, vec![]);
    fork_cfg.mode = CheckpointMode::Forked { fork_cost_per_page_ns: 200, cow_copy_ns: 2_000 };
    let fork = run_fault_tolerant(&fork_cfg, synthetic_layout(), build_synthetic(4)).unwrap();

    let s = &stop.ranks[0];
    let f = &fork.ranks[0];
    assert_eq!(s.checkpoints, f.checkpoints, "same schedule");
    assert!(
        f.checkpoint_stall.as_secs_f64() < 0.5 * s.checkpoint_stall.as_secs_f64(),
        "forked stall {} vs stop-and-copy {}",
        f.checkpoint_stall,
        s.checkpoint_stall
    );
    assert!(f.commit_lag > ickpt::sim::SimDuration::ZERO, "commits are deferred");
    assert_eq!(s.content_digest, f.content_digest, "mode must not change the computation");
    // Every generation eventually committed.
    assert_eq!(
        fork_cfg.store.list_manifests().unwrap().len() as u64,
        f.checkpoints,
        "all forked generations commit"
    );

    // Recovery still works under forked mode.
    let mut fail_cfg = synthetic_cfg(4, 15, vec![FailureSpec::process(1, SimTime::from_secs(8))]);
    fail_cfg.mode = CheckpointMode::Forked { fork_cost_per_page_ns: 200, cow_copy_ns: 2_000 };
    let recovered = run_fault_tolerant(&fail_cfg, synthetic_layout(), build_synthetic(4)).unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    for (a, b) in stop.ranks.iter().zip(&recovered.ranks) {
        assert_eq!(a.content_digest, b.content_digest, "rank {}", a.rank);
    }
}

#[test]
fn memory_exclusion_is_accounted_for_dynamic_apps() {
    // Sage maps a burst workspace and frees it before iteration end:
    // those dirty pages are excluded from checkpoints and the tracker
    // reports the saving. Static apps exclude nothing.
    let nranks = 2;
    let scale = 0.02;
    let w = Workload::Sage50;
    let cfg = FaultTolerantConfig {
        nranks,
        max_iterations: 4,
        timeslice: SimDuration::from_secs(1),
        policy: CheckpointPolicy::incremental(SimDuration::from_secs(35), 0),
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::PerRank,
        failures: vec![],
        net: NetConfig::qsnet(),
        redundancy: None,
        obs: ickpt::obs::Recorder::disabled(),
        dedup: None,
        write_profile: Default::default(),
        max_attempts: 1,
    };
    let report = run_fault_tolerant(&cfg, w.layout(scale), move |rank| {
        Box::new(w.build(rank, nranks, scale, 7))
    })
    .unwrap();
    let r0 = &report.ranks[0];
    assert!(r0.excluded_pages > 0, "Sage's freed workspace must show up as excluded pages");

    let static_report =
        run_fault_tolerant(&synthetic_cfg(2, 6, vec![]), synthetic_layout(), build_synthetic(2))
            .unwrap();
    assert_eq!(static_report.ranks[0].excluded_pages, 0, "static app excludes nothing");
}

#[test]
fn sage_recovery_from_incremental_chain_is_byte_exact() {
    // Regression: recovery from an *incremental* generation (not the
    // base) with mmap churn in between. Two historical bugs hid here:
    // freshly mapped pages were not zeroed, and newly mapped ranges
    // were missing from the checkpoint set, so a restore resurrected
    // stale bytes into re-used address ranges.
    let nranks = 4;
    let scale = 0.02;
    let w = Workload::Sage50;
    let layout = w.layout(scale);
    let build = move |rank: usize| -> Box<dyn ickpt::apps::AppModel> {
        Box::new(w.build(rank, nranks, scale, 7))
    };
    let mk = |failures: Vec<FailureSpec>| FaultTolerantConfig {
        nranks,
        max_iterations: 8,
        timeslice: SimDuration::from_secs(1),
        // Interval 40 s: a full at t=40, an increment at t=80, failure
        // at t>=90 -> recovery restores the incremental chain.
        policy: CheckpointPolicy::incremental(SimDuration::from_secs(40), 0),
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::PerRank,
        failures,
        net: NetConfig::qsnet(),
        redundancy: None,
        obs: ickpt::obs::Recorder::disabled(),
        dedup: None,
        write_profile: Default::default(),
        max_attempts: 3,
    };
    let reference = run_fault_tolerant(&mk(vec![]), layout, build).unwrap();
    let recovered = run_fault_tolerant(
        &mk(vec![FailureSpec::process(2, SimTime::from_secs(90))]),
        layout,
        build,
    )
    .unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    assert_eq!(recovered.attempts, 2);
    for (a, b) in reference.ranks.iter().zip(&recovered.ranks) {
        assert_eq!(a.content_digest, b.content_digest, "rank {}", a.rank);
    }
}

#[test]
fn sage_model_survives_failure_with_dynamic_memory() {
    // The hard case: Sage churns mmap blocks and maps a burst
    // workspace; recovery must rebuild the exact mapping layout.
    let nranks = 2;
    let scale = 0.01;
    let w = Workload::Sage50;
    let layout = w.layout(scale);
    let build = move |rank: usize| -> Box<dyn ickpt::apps::AppModel> {
        Box::new(w.build(rank, nranks, scale, 99))
    };

    let cfg_ref = FaultTolerantConfig {
        nranks,
        max_iterations: 6,
        timeslice: SimDuration::from_secs(1),
        policy: CheckpointPolicy::incremental(SimDuration::from_secs(30), 0),
        store: Arc::new(MemStore::new()),
        device: DevicePreset::ScsiDisk,
        mode: CheckpointMode::StopAndCopy,
        storage_path: StoragePath::PerRank,
        failures: vec![],
        net: NetConfig::qsnet(),
        redundancy: None,
        obs: ickpt::obs::Recorder::disabled(),
        dedup: None,
        write_profile: Default::default(),
        max_attempts: 3,
    };
    let reference = run_fault_tolerant(&cfg_ref, layout, build).unwrap();
    assert_eq!(reference.outcome, RunOutcome::Completed);
    let ref_digests: Vec<_> = reference.ranks.iter().map(|r| r.content_digest.unwrap()).collect();

    let cfg = FaultTolerantConfig {
        store: Arc::new(MemStore::new()),
        failures: vec![FailureSpec::process(1, SimTime::from_secs(70))],
        ..cfg_ref
    };
    let recovered = run_fault_tolerant(&cfg, layout, build).unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    assert_eq!(recovered.attempts, 2);
    let rec_digests: Vec<_> = recovered.ranks.iter().map(|r| r.content_digest.unwrap()).collect();
    assert_eq!(ref_digests, rec_digests, "Sage recovery must be byte-exact");
}

/// Shared config for the tiered-storage tests: node-local tier plus
/// the given redundancy scheme, draining to the shared array.
fn tiered_cfg(
    scheme: SchemeSpec,
    drain_every: u64,
    failures: Vec<FailureSpec>,
) -> FaultTolerantConfig {
    FaultTolerantConfig {
        storage_path: StoragePath::Shared,
        redundancy: Some(RedundancyConfig {
            scheme,
            local_device: DevicePreset::NodeLocal,
            drain_every,
            drain_topology: DrainTopology::Flat,
        }),
        ..synthetic_cfg(4, 15, failures)
    }
}

#[test]
fn node_loss_recovers_via_redundancy_byte_identical() {
    // Reference: failure-free tiered run (digests are a pure function
    // of the application, so any completed run gives the same ones).
    let cfg_ref = tiered_cfg(SchemeSpec::Partner { offset: 1 }, 4, vec![]);
    let reference = run_fault_tolerant(&cfg_ref, synthetic_layout(), build_synthetic(4)).unwrap();
    assert_eq!(reference.outcome, RunOutcome::Completed);
    let ref_digests: Vec<_> = reference.ranks.iter().map(|r| r.content_digest.unwrap()).collect();

    for scheme in [SchemeSpec::Partner { offset: 1 }, SchemeSpec::XorParity { group_size: 2 }] {
        // Node loss at 8 s wipes rank 1's node-local tier; nothing has
        // drained yet (drain fires at generation 3), so only the
        // redundancy scheme can serve the latest generation.
        let cfg = tiered_cfg(scheme, 4, vec![FailureSpec::node_loss(1, SimTime::from_secs(8))]);
        let recovered = run_fault_tolerant(&cfg, synthetic_layout(), build_synthetic(4)).unwrap();
        assert_eq!(recovered.outcome, RunOutcome::Completed, "{}", scheme.name());
        assert_eq!(recovered.attempts, 2, "{}", scheme.name());
        let rec = recovered.recoveries[0];
        assert_eq!(rec.kind, FailureKind::NodeLoss);
        assert_eq!(
            rec.source,
            RecoverySource::Reconstructed,
            "{}: node loss with nothing drained must recover over the network",
            scheme.name()
        );
        assert!(rec.generation.is_some());
        let rec_digests: Vec<_> =
            recovered.ranks.iter().map(|r| r.content_digest.unwrap()).collect();
        assert_eq!(ref_digests, rec_digests, "{}: state must be byte-identical", scheme.name());
        // Per-tier accounting is surfaced on every rank.
        for r in &recovered.ranks {
            let tier = r.tier.expect("tiered runs report per-tier usage");
            assert!(tier.local_bytes > 0, "rank {} wrote to its local tier", r.rank);
            assert!(tier.redundancy_bytes > 0, "rank {} published redundancy", r.rank);
        }
        // The failed rank's restore pulled bytes over the interconnect.
        let tier = recovered.ranks[1].tier.unwrap();
        assert!(tier.recovery_net_bytes > 0, "{}: reconstruction uses the network", scheme.name());
    }
}

#[test]
fn node_loss_without_redundancy_falls_back_to_drained_generation() {
    let cfg_ref = tiered_cfg(SchemeSpec::LocalOnly, 1, vec![]);
    let reference = run_fault_tolerant(&cfg_ref, synthetic_layout(), build_synthetic(4)).unwrap();
    assert_eq!(reference.outcome, RunOutcome::Completed);
    let ref_digests: Vec<_> = reference.ranks.iter().map(|r| r.content_digest.unwrap()).collect();

    // drain_every = 1: every generation is flushed to the shared array
    // as soon as it commits, so losing a node costs no work here — but
    // the recovery has to come from the durable tier.
    let cfg = tiered_cfg(
        SchemeSpec::LocalOnly,
        1,
        vec![FailureSpec::node_loss(1, SimTime::from_secs(8))],
    );
    let recovered = run_fault_tolerant(&cfg, synthetic_layout(), build_synthetic(4)).unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    let rec = recovered.recoveries[0];
    assert_eq!(rec.kind, FailureKind::NodeLoss);
    assert_eq!(
        rec.source,
        RecoverySource::Durable,
        "local-only tier must fall back to the drained shared array"
    );
    let rec_digests: Vec<_> = recovered.ranks.iter().map(|r| r.content_digest.unwrap()).collect();
    assert_eq!(ref_digests, rec_digests);
    let drain = recovered.drain.expect("tiered runs report drain stats");
    assert!(drain.drained_generations > 0);
    assert!(drain.drained_bytes > 0);
}

#[test]
fn process_failure_on_tiered_storage_restores_from_local() {
    // A plain process crash leaves the node-local tier intact: the
    // restarted rank reads its own fast device, not the network.
    let cfg = tiered_cfg(
        SchemeSpec::Partner { offset: 1 },
        4,
        vec![FailureSpec::process(2, SimTime::from_secs(8))],
    );
    let recovered = run_fault_tolerant(&cfg, synthetic_layout(), build_synthetic(4)).unwrap();
    assert_eq!(recovered.outcome, RunOutcome::Completed);
    let rec = recovered.recoveries[0];
    assert_eq!(rec.kind, FailureKind::Process);
    assert_eq!(rec.source, RecoverySource::Local);
    let tier = recovered.ranks[2].tier.unwrap();
    assert!(tier.recovery_local_bytes > 0);
}

#[test]
fn tiered_node_loss_recovery_is_deterministic() {
    let run = || {
        let cfg = tiered_cfg(
            SchemeSpec::XorParity { group_size: 2 },
            4,
            vec![FailureSpec::node_loss(0, SimTime::from_secs(8))],
        );
        let report = run_fault_tolerant(&cfg, synthetic_layout(), build_synthetic(4)).unwrap();
        assert_eq!(report.outcome, RunOutcome::Completed);
        (
            report.attempts,
            report.wasted,
            report.recoveries,
            report.drain,
            report
                .ranks
                .iter()
                .map(|r| (r.final_time, r.content_digest, r.tier))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}
