//! Scheduler and aggregation properties behind the 16k-rank engine:
//!
//! * The calendar-queue [`EventWheel`] pops in exactly the order a
//!   binary-heap reference would, under randomized schedules with
//!   interleaved pushes and pops (including pushes into the past).
//! * Tree-reduction of rank reports is byte-identical to the flat fold
//!   at any fan-in arity.
//! * The event-driven cluster engine produces byte-identical rank
//!   reports to the legacy one-thread-per-rank reference, at any
//!   worker count, across workloads with sends/receives, collectives
//!   and wavefront dependencies.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ickpt::apps::Workload;
use ickpt::cluster::{
    characterize, characterize_model_threaded, reduce_reports, CharacterizationConfig,
    ClusterAggregate, RankReport, ReportDetail, RunReport,
};
use ickpt::sim::{EventWheel, SimDuration, SimTime, SplitMix64};

// ---------------------------------------------------------------------
// Event wheel vs binary-heap reference
// ---------------------------------------------------------------------

/// Drive the wheel and a `BinaryHeap` through the same randomized
/// push/pop schedule and compare every popped `(time, seq)` pair.
fn wheel_vs_heap(seed: u64, ops: usize, horizon_ns: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut wheel: EventWheel<u64> = EventWheel::new();
    let mut heap: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut base = 0u64;
    for _ in 0..ops {
        match rng.next_below(3) {
            // Push twice as often as we pop so the queue stays busy.
            0 | 1 => {
                // Mostly forward, occasionally into the already-popped
                // past (a resolver waking a rank at its old clock).
                let t = if rng.next_below(8) == 0 {
                    SimTime(base.saturating_sub(rng.next_below(horizon_ns / 4)))
                } else {
                    SimTime(base + rng.next_below(horizon_ns))
                };
                wheel.push(t, seq);
                heap.push(Reverse((t, seq)));
                seq += 1;
            }
            _ => {
                let got = wheel.pop();
                let want = heap.pop().map(|Reverse((t, s))| (t, s));
                assert_eq!(got, want, "seed {seed}: pop diverged after {seq} pushes");
                if let Some((t, _)) = got {
                    base = base.max(t.0);
                }
            }
        }
        assert_eq!(wheel.len(), heap.len(), "seed {seed}: length diverged");
    }
    // Drain both: the tail order must match too.
    while let Some(Reverse((t, s))) = heap.pop() {
        assert_eq!(wheel.pop(), Some((t, s)), "seed {seed}: drain diverged");
    }
    assert!(wheel.is_empty());
}

#[test]
fn event_wheel_matches_binary_heap_reference() {
    for seed in [1u64, 42, 0xDEAD, 0x1DC4_2004] {
        // Horizons straddling the default bucket width (1 MiB ns)
        // exercise intra-bucket sorting, year wraps and far jumps.
        wheel_vs_heap(seed, 4000, 1 << 10);
        wheel_vs_heap(seed, 4000, 1 << 21);
        wheel_vs_heap(seed, 2000, 1 << 34);
    }
}

#[test]
fn event_wheel_fifo_on_time_ties() {
    let mut wheel: EventWheel<u64> = EventWheel::new();
    let t = SimTime(777);
    for i in 0..100u64 {
        wheel.push(t, i);
    }
    for i in 0..100u64 {
        assert_eq!(wheel.pop(), Some((t, i)), "insertion order must break ties");
    }
}

// ---------------------------------------------------------------------
// Tree-reduce vs flat fold
// ---------------------------------------------------------------------

fn small_characterization(
    nranks: usize,
    detail: ReportDetail,
    workers: Option<usize>,
) -> RunReport {
    let cfg = CharacterizationConfig {
        nranks,
        scale: 0.02,
        run_for: SimDuration::from_secs(30),
        epoch: Some(SimDuration::from_secs(5)),
        track_iterations: true,
        trace_ranks: 1,
        workers,
        detail,
        ..Default::default()
    };
    characterize(Workload::Sage100, &cfg)
}

#[test]
fn tree_reduce_matches_flat_merge_at_any_arity() {
    let report = small_characterization(9, ReportDetail::Full, Some(2));
    let mut flat = ClusterAggregate::default();
    for r in &report.ranks {
        flat.merge(&ClusterAggregate::from_rank(r));
    }
    for arity in [2, 3, 32, report.ranks.len(), 1000] {
        assert_eq!(
            reduce_reports(&report.ranks, arity),
            flat,
            "arity {arity} diverged from the flat fold"
        );
    }
    assert_eq!(flat.ranks, 9);
    assert!(flat.summary.windows > 0, "summaries must flow through the reduction");
}

// ---------------------------------------------------------------------
// Event engine vs threaded reference
// ---------------------------------------------------------------------

/// Everything a characterization consumer can observe of a rank.
fn rank_key(r: &RankReport) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        (r.rank, &r.samples, &r.epoch_samples, &r.iteration_samples),
        (r.total_faults, r.overhead, r.started_at, r.final_time, r.iterations),
        (r.bytes_received, r.footprint_pages, r.excluded_pages, r.summary),
        (&r.boundaries, &r.trace),
    )
}

fn assert_reports_identical(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.ranks.len(), b.ranks.len(), "{what}: rank count");
    for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
        assert_eq!(rank_key(ra), rank_key(rb), "{what}: rank {} diverged", ra.rank);
    }
}

#[test]
fn engine_is_byte_identical_to_threaded_reference() {
    // Sage: compute + allreduce. Sweep3d: wavefront sends/receives.
    // NasBt: the remaining collective mix. Odd rank counts exercise
    // non-power-of-two trees.
    for (workload, nranks) in [(Workload::Sage100, 4), (Workload::Sweep3d, 6), (Workload::NasBt, 4)]
    {
        let cfg = CharacterizationConfig {
            nranks,
            scale: 0.02,
            run_for: SimDuration::from_secs(30),
            epoch: Some(SimDuration::from_secs(5)),
            track_iterations: true,
            trace_ranks: 1,
            ..Default::default()
        };
        let reference = {
            let layout = workload.layout(cfg.scale);
            characterize_model_threaded(&cfg, layout, |rank| {
                Box::new(workload.build(rank, cfg.nranks, cfg.scale, cfg.seed))
            })
        };
        for workers in [1usize, 4, 8] {
            let event = characterize(
                workload,
                &CharacterizationConfig { workers: Some(workers), ..cfg.clone() },
            );
            assert_reports_identical(
                &reference,
                &event,
                &format!("{workload:?} x{nranks} @ {workers} workers"),
            );
        }
    }
}

#[test]
fn engine_determinism_across_worker_counts_at_scale() {
    // Big enough that batches exceed the parallel threshold and the
    // wheel wraps; compare worker counts against each other.
    let run = |workers: usize| small_characterization(96, ReportDetail::compact(), Some(workers));
    let one = run(1);
    for workers in [4usize, 8] {
        assert_reports_identical(&one, &run(workers), &format!("96 ranks @ {workers} workers"));
    }
}

// ---------------------------------------------------------------------
// Compact report detail
// ---------------------------------------------------------------------

#[test]
fn compact_detail_keeps_exact_summaries_and_full_rank0() {
    let full = small_characterization(8, ReportDetail::Full, Some(4));
    let compact = small_characterization(8, ReportDetail::Compact { reservoir: 16 }, Some(4));
    for (f, c) in full.ranks.iter().zip(&compact.ranks) {
        // The integer roll-up is exact in both modes.
        assert_eq!(f.summary, c.summary, "rank {} summary", f.rank);
        assert_eq!(f.final_time, c.final_time);
        assert_eq!(f.total_faults, c.total_faults);
        assert_eq!(f.bytes_received, c.bytes_received);
        if f.rank == 0 {
            // Rank 0 feeds the figure pipelines: full detail always.
            assert_eq!(f.samples, c.samples, "rank 0 keeps its full series");
            assert_eq!(f.boundaries, c.boundaries);
        } else {
            assert!(
                c.samples.len() <= 16,
                "rank {}: reservoir exceeded: {}",
                c.rank,
                c.samples.len()
            );
            assert!(c.boundaries.len() <= 1, "compact ranks keep only the last boundary");
            assert_eq!(
                c.boundaries.last(),
                f.boundaries.last(),
                "the surviving boundary is the real last one"
            );
        }
    }
    // Tree-reducing either run gives the same cluster aggregate.
    assert_eq!(
        reduce_reports(&full.ranks, 32),
        reduce_reports(&compact.ranks, 32),
        "aggregation is detail-independent"
    );
}
