//! Property-based end-to-end checkpoint/restore tests: under arbitrary
//! interleavings of writes, heap growth/shrink, mmap/munmap and
//! checkpoints, restoring any committed generation reproduces the
//! image that existed at its capture, byte for byte.

use ickpt::core::checkpoint::{capture_full, capture_incremental};
use ickpt::core::restore::restore_rank;
use ickpt::core::tracked_space::TrackedSpace;
use ickpt::core::tracker::{TrackerConfig, WriteTracker};
use ickpt::mem::{AddressSpace, BackedSpace, LayoutBuilder, PageRange, PAGE_SIZE};
use ickpt::sim::SimTime;
use ickpt::storage::{gc, Chunk, ChunkKey, MemStore, StableStorage};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Touch `len` pages starting at a fraction of the mapped space.
    Write { start_frac: f64, len: u64 },
    HeapGrow(u64),
    HeapShrink(u64),
    Mmap(u64),
    /// Unmap the i-th live mmap block (mod count).
    Munmap(usize),
    /// Take a checkpoint (full every 3rd generation).
    Checkpoint,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        3 => (0.0f64..1.0, 1u64..24).prop_map(|(start_frac, len)| Op::Write { start_frac, len }),
        1 => (1u64..12).prop_map(Op::HeapGrow),
        1 => (1u64..12).prop_map(Op::HeapShrink),
        1 => (1u64..12).prop_map(Op::Mmap),
        1 => (0usize..8).prop_map(Op::Munmap),
        1 => Just(Op::Checkpoint),
    ];
    prop::collection::vec(op, 5..80)
}

/// Pick a mapped range of up to `len` pages at roughly `frac` of the
/// mapped area (None if nothing suitable).
fn pick_range(space: &BackedSpace, frac: f64, len: u64) -> Option<PageRange> {
    let ranges = space.mapped_ranges();
    if ranges.is_empty() {
        return None;
    }
    let idx = ((ranges.len() as f64 * frac) as usize).min(ranges.len() - 1);
    let r = ranges[idx];
    let take = len.min(r.len);
    let offset = ((r.len - take) as f64 * frac) as u64;
    Some(PageRange::new(r.start + offset, take))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn restore_reproduces_every_committed_generation(ops in ops()) {
        let layout = LayoutBuilder::new()
            .static_bytes(4 * PAGE_SIZE)
            .heap_capacity_bytes(64 * PAGE_SIZE)
            .mmap_capacity_bytes(64 * PAGE_SIZE)
            .build();
        let mut space = BackedSpace::new(layout);
        let mut tracker = WriteTracker::new(
            layout.capacity_pages(),
            space.mapped_pages(),
            TrackerConfig { track_checkpoint_set: true, ..Default::default() },
        );
        let store = MemStore::new();
        let mut live_mmaps: Vec<PageRange> = Vec::new();
        let mut generation = 0u64;
        let mut version = 0u64;
        // Digest of the space at each captured generation.
        let mut digests: Vec<(u64, u64)> = Vec::new();

        for op in ops {
            match op {
                Op::Write { start_frac, len } => {
                    if let Some(r) = pick_range(&space, start_frac, len) {
                        version += 1;
                        let mut ts = TrackedSpace::new(&mut space, &mut tracker);
                        ts.touch(r, version);
                    }
                }
                Op::HeapGrow(n) => {
                    let mut ts = TrackedSpace::new(&mut space, &mut tracker);
                    let _ = ts.heap_grow(n);
                }
                Op::HeapShrink(n) => {
                    let mut ts = TrackedSpace::new(&mut space, &mut tracker);
                    let _ = ts.heap_shrink(n);
                }
                Op::Mmap(n) => {
                    let mut ts = TrackedSpace::new(&mut space, &mut tracker);
                    if let Ok(r) = ts.mmap(n) {
                        live_mmaps.push(r);
                    }
                }
                Op::Munmap(i) => {
                    if !live_mmaps.is_empty() {
                        let r = live_mmaps.remove(i % live_mmaps.len());
                        let mut ts = TrackedSpace::new(&mut space, &mut tracker);
                        ts.munmap(r).unwrap();
                    }
                }
                Op::Checkpoint => {
                    let now = SimTime::from_secs(generation + 1);
                    let chunk = if generation.is_multiple_of(3) {
                        let _ = tracker.take_checkpoint_set();
                        capture_full(&space, 0, generation, now)
                    } else {
                        let dirty = tracker.take_checkpoint_set();
                        capture_incremental(&space, 0, generation, generation - 1, now, &dirty)
                    };
                    store.put_chunk(ChunkKey::new(0, generation), &chunk.encode()).unwrap();
                    digests.push((generation, space.content_digest()));
                    generation += 1;
                }
            }
        }
        // Ensure at least one generation exists.
        if digests.is_empty() {
            let chunk = capture_full(&space, 0, 0, SimTime::ZERO);
            store.put_chunk(ChunkKey::new(0, 0), &chunk.encode()).unwrap();
            digests.push((0, space.content_digest()));
        }

        // Every generation restores to its captured image.
        for &(gen, digest) in &digests {
            let mut fresh = BackedSpace::new(layout);
            let report = restore_rank(&store, 0, gen, &mut fresh).unwrap();
            prop_assert_eq!(
                fresh.content_digest(),
                digest,
                "generation {} (chain length {})",
                gen,
                report.chain_length
            );
        }

        // Compacting the newest chain yields the same image with a
        // single chunk.
        let &(newest, digest) = digests.last().unwrap();
        let mut chain = Vec::new();
        let mut g = newest;
        loop {
            let c = Chunk::decode(&store.get_chunk(ChunkKey::new(0, g)).unwrap()).unwrap();
            chain.push(g);
            match c.parent {
                Some(p) => g = p,
                None => break,
            }
        }
        chain.reverse();
        gc::compact_rank_chain(&store, 0, &chain, None).unwrap();
        let mut fresh = BackedSpace::new(layout);
        let report = restore_rank(&store, 0, newest, &mut fresh).unwrap();
        prop_assert_eq!(report.chain_length, 1);
        prop_assert_eq!(fresh.content_digest(), digest, "post-compaction image");
    }
}
